"""simlint — static analysis for the repo's determinism invariants.

The evaluation only means something because every run is a pure function
of (seed, configuration): kernel variants are bit-identical to their
references, the sim-clock never sees wall time, and tie-order is total.
``repro.analysis`` turns those conventions into machine-checked rules —
an ``ast``-visitor engine (:mod:`repro.analysis.engine`), a rule
registry (:mod:`repro.analysis.registry`), the seven-rule catalogue
(:mod:`repro.analysis.rules`), a content-hash result cache, pragma
suppression, and a committed baseline for grandfathered findings.

Run it as ``repro lint src/repro`` (exit 0 clean / 1 findings /
2 internal error), or call :func:`run_lint` directly.
"""

from __future__ import annotations

from repro.analysis import rules as _rules  # noqa: F401  (registers the catalogue)
from repro.analysis.baseline import Baseline
from repro.analysis.engine import (
    DEFAULT_BASELINE_NAME,
    DEFAULT_CACHE_NAME,
    LintEngine,
    discover_files,
    module_path_of,
    parse_pragmas,
    run_lint,
)
from repro.analysis.findings import Finding, LintError, LintReport
from repro.analysis.registry import (
    ANALYZER_VERSION,
    FileContext,
    Rule,
    all_rules,
    get_rules,
    register,
    rules_signature,
)

__all__ = [
    "ANALYZER_VERSION",
    "Baseline",
    "DEFAULT_BASELINE_NAME",
    "DEFAULT_CACHE_NAME",
    "FileContext",
    "Finding",
    "LintEngine",
    "LintError",
    "LintReport",
    "Rule",
    "all_rules",
    "discover_files",
    "get_rules",
    "module_path_of",
    "parse_pragmas",
    "register",
    "rules_signature",
    "run_lint",
]
