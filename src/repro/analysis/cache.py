"""Incremental cache: per-file facts and findings, dependency-aware.

Per-file rules are pure functions of one file's text, so their entries
are keyed on the file's SHA-256 alone.  Whole-program rules additionally
depend on every module reachable through the import graph, so each entry
also records the file's **dependency-closure hash**; cached project
findings are served only while that matches.  A fully-warm run is then
pure hashing plus one JSON load — no parsing, no fixpoints.

The cache file is an implementation detail (gitignored), versioned by
the rules signature, which embeds a content digest of the analyzer's own
sources: editing any rule, or enabling a different rule subset,
invalidates every entry at once.  Entries are raw JSON dicts; the engine
owns the schema (see ``LintEngine._entry_for``).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path

_CACHE_FORMAT = 2


def content_hash(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


class ResultCache:
    """Load-once / save-once JSON cache of per-file analysis entries."""

    def __init__(self, path: Path | None, rules_signature: str) -> None:
        self.path = path
        self.rules_signature = rules_signature
        self._entries: dict[str, dict[str, object]] = {}
        self._dirty = False
        if path is not None:
            self._entries = self._load(path)

    def _load(self, path: Path) -> dict[str, dict[str, object]]:
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return {}
        if (
            not isinstance(data, dict)
            or data.get("format") != _CACHE_FORMAT
            or data.get("rules") != self.rules_signature
        ):
            return {}
        files = data.get("files")
        return files if isinstance(files, dict) else {}

    def get_entry(
        self, rel_path: str, source_hash: str
    ) -> dict[str, object] | None:
        """The raw cached entry for this exact file content, or None."""
        entry = self._entries.get(rel_path)
        if entry is None or entry.get("hash") != source_hash:
            return None
        return entry

    def put_entry(self, rel_path: str, entry: dict[str, object]) -> None:
        self._entries[rel_path] = entry
        self._dirty = True

    def save(self) -> None:
        """Atomically persist (best effort — a read-only FS is not an error)."""
        if self.path is None or not self._dirty:
            return
        payload = {
            "format": _CACHE_FORMAT,
            "rules": self.rules_signature,
            "files": self._entries,
        }
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=str(self.path.parent), prefix=self.path.name, suffix=".tmp"
            )
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, separators=(",", ":"))
            os.replace(tmp_name, self.path)
        except OSError:
            pass
