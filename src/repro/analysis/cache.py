"""Per-file result cache, keyed on content hash.

Rules are pure functions of a file's text (pragma comments included), so
a file whose SHA-256 is unchanged under the same rule set must produce
the same findings — the cache just stores them.  A warm run over
``src/repro`` is then pure hashing plus one JSON load, which is what
keeps ``repro lint`` fast enough to sit in front of every test job.

The cache file is an implementation detail (gitignored), versioned by
the rules signature: enabling a different rule subset or bumping
``ANALYZER_VERSION`` invalidates every entry at once.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path

from repro.analysis.findings import Finding

_CACHE_FORMAT = 1


def content_hash(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


class ResultCache:
    """Load-once / save-once JSON cache of per-file findings."""

    def __init__(self, path: Path | None, rules_signature: str) -> None:
        self.path = path
        self.rules_signature = rules_signature
        self.hits = 0
        self._entries: dict[str, dict[str, object]] = {}
        self._dirty = False
        if path is not None:
            self._entries = self._load(path)

    def _load(self, path: Path) -> dict[str, dict[str, object]]:
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return {}
        if (
            not isinstance(data, dict)
            or data.get("format") != _CACHE_FORMAT
            or data.get("rules") != self.rules_signature
        ):
            return {}
        files = data.get("files")
        return files if isinstance(files, dict) else {}

    def get(self, rel_path: str, source_hash: str) -> list[Finding] | None:
        """Cached findings for this exact file content, or None."""
        entry = self._entries.get(rel_path)
        if entry is None or entry.get("hash") != source_hash:
            return None
        raw = entry.get("findings")
        if not isinstance(raw, list):
            return None
        try:
            findings = [Finding.from_json(item) for item in raw]
        except (KeyError, TypeError, ValueError):
            return None
        self.hits += 1
        return findings

    def put(self, rel_path: str, source_hash: str, findings: list[Finding]) -> None:
        self._entries[rel_path] = {
            "hash": source_hash,
            "findings": [finding.to_json() for finding in findings],
        }
        self._dirty = True

    def save(self) -> None:
        """Atomically persist (best effort — a read-only FS is not an error)."""
        if self.path is None or not self._dirty:
            return
        payload = {
            "format": _CACHE_FORMAT,
            "rules": self.rules_signature,
            "files": self._entries,
        }
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=str(self.path.parent), prefix=self.path.name, suffix=".tmp"
            )
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, separators=(",", ":"))
            os.replace(tmp_name, self.path)
        except OSError:
            pass
