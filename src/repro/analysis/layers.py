"""The layer contract: ``docs/architecture.md`` as an import DAG.

The architecture document describes the package as a stack — foundation
side-cars at the bottom, the serving plane and experiment drivers at the
top — but until now nothing *enforced* it: a convenience import from
``index/`` into ``retrieval/`` would type-check, pass every test, and
quietly invert the dependency story.  ``ARCH-LAYER`` turns the prose
into a checked invariant: a module may import (at top level, at runtime)
only modules in its own layer or below.

Two escape hatches are deliberate and documented:

* ``if TYPE_CHECKING:`` imports — annotation-only upward references are
  fine because they never execute.
* Function-local (lazy) imports — an upward reference inside a function
  body is the sanctioned pattern for optional integration points (e.g.
  ``cluster/engine.py`` lazily importing the serving plane).

Both arrive in the graph as ``top_level=False`` edges and are skipped.
Same-rank imports are unchecked: layers constrain the *stack*, not
siblings within a band.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.graph import ProjectContext, module_path_from_dotted
from repro.analysis.registry import ProjectRule, register

#: (rank, layer name, module-path prefixes) — longest prefix wins, so the
#: ``cluster/scenarios.py`` override beats the ``cluster/`` band.  Keep in
#: sync with the "Layer contract" table in ``docs/architecture.md``.
LAYERS: tuple[tuple[int, str, tuple[str, ...]], ...] = (
    (0, "foundation", (
        "telemetry/", "reporting/", "analysis/", "text/", "scoring/", "nn/",
    )),
    (1, "index", ("index/",)),
    (2, "retrieval", ("retrieval/",)),
    (3, "workloads", ("workloads/",)),
    (4, "cluster", ("cluster/",)),
    (5, "coordination", (
        "core/", "policies/", "predictors/", "metrics/", "personalization/",
    )),
    (6, "serving", ("serving/",)),
    (7, "app", (
        "experiments/", "cli.py", "__main__.py", "__init__.py",
        # scenarios wire cluster runs to metrics ground truth; they are
        # drivers living in cluster/ for discoverability, not sim code.
        "cluster/scenarios.py",
    )),
)


def layer_of(module_path: str) -> tuple[int, str] | None:
    """Longest-prefix layer lookup; ``None`` for unassigned modules."""
    best: tuple[int, tuple[int, str]] | None = None
    for rank, name, prefixes in LAYERS:
        for prefix in prefixes:
            if module_path == prefix or (
                prefix.endswith("/") and module_path.startswith(prefix)
            ):
                if best is None or len(prefix) > best[0]:
                    best = (len(prefix), (rank, name))
    return best[1] if best is not None else None


@register
class ArchLayerRule(ProjectRule):
    """No top-level runtime import may point up the layer stack."""

    id = "ARCH-LAYER"
    summary = "import edge pointing up the architecture layer stack"
    rationale = (
        "The layer DAG (foundation -> index -> retrieval -> workloads -> "
        "cluster -> coordination -> serving -> app) is what keeps the sim "
        "core importable without the serving plane and the side-cars free "
        "of sim dependencies; a back-edge couples build, test, and "
        "startup costs in the wrong direction.  Use a TYPE_CHECKING or "
        "function-local import for sanctioned upward references."
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for module in sorted(project.edges):
            facts = project.modules.get(module)
            if facts is None:
                continue
            source_layer = layer_of(facts.module_path)
            if source_layer is None:
                continue
            # a package facade re-exports its own submodules, including
            # ones the table promotes (cluster/scenarios.py -> app).
            own_prefix = (
                module + "."
                if facts.module_path.endswith("__init__.py")
                else None
            )
            for edge in project.edges[module]:
                if not edge.top_level:
                    continue
                if own_prefix is not None and edge.target.startswith(own_prefix):
                    continue
                target_facts = project.modules.get(edge.target)
                target_path = (
                    target_facts.module_path
                    if target_facts is not None
                    else module_path_from_dotted(edge.target)
                )
                target_layer = layer_of(target_path)
                if target_layer is None or target_layer[0] <= source_layer[0]:
                    continue
                yield Finding(
                    path=facts.rel_path,
                    line=edge.lineno,
                    col=edge.col,
                    rule=self.id,
                    message=(
                        f"{source_layer[1]}-layer module imports "
                        f"{edge.target} from the higher {target_layer[1]} "
                        "layer; invert the dependency, or make it a "
                        "TYPE_CHECKING/function-local import if it is an "
                        "annotation or optional integration point"
                    ),
                )
