"""Interprocedural taint rules over the project call graph.

Three whole-program rules, each closing a hole PR 5's per-file analysis
cannot see — a value that is born in one module and breaks a contract
in another:

``DET-CLOCK-FLOW``
    A sim-path module calls (possibly through a chain of helpers in
    other modules) a function that reads the wall clock.  The per-file
    ``DET-CLOCK`` rule flags the *read*; when that read is legitimately
    pragma'd at home ("host measurement, never feeds the sim"), nothing
    per-file stops a cluster/ module from consuming the value anyway.

``DET-RNG-FLOW``
    Process-global or unseeded randomness escaping into
    ``cluster/``/``retrieval/``/``serving/`` through helper functions.

``PAR-PICKLE-FLOW``
    A lambda or nested function handed to an *intermediate* function
    whose parameter eventually reaches a process-pool ``submit``/``map``.
    The per-file ``PAR-PICKLE`` rule only sees lexically process-ish
    receivers at the submission site itself.

All three share the same machinery: seed facts per function (direct
clock/RNG calls, direct sink params), then a worklist fixpoint over the
resolved call graph, then findings at the *crossing* call sites with a
reconstructed witness chain in the message so the reader can follow the
value without re-running the analysis.
"""

from __future__ import annotations

from typing import Iterator, Mapping

from repro.analysis.findings import Finding
from repro.analysis.graph import (
    ARG_LAMBDA,
    ARG_NESTED,
    ARG_PARAM,
    CallSite,
    ProjectContext,
)
from repro.analysis.registry import ProjectRule, _matches_any, register

#: function key used throughout: (dotted module, qualname)
FuncKey = tuple[str, str]

#: modules whose wall-clock use is their contract (the DET-CLOCK
#: allowlist): they neither seed nor propagate clock taint.
_CLOCK_EXEMPT = (
    "telemetry/",
    "retrieval/executor.py",
    "experiments/bench_*.py",
)

#: where clock taint arriving is a finding (the sim path).
_CLOCK_SCOPE = ("cluster/", "core/", "serving/", "retrieval/", "policies/")

#: where RNG taint arriving is a finding.
_RNG_SCOPE = ("cluster/", "retrieval/", "serving/")


def _propagate(
    project: ProjectContext,
    seeds: dict[FuncKey, str],
    exempt: tuple[str, ...],
) -> dict[FuncKey, str]:
    """Worklist fixpoint: a caller of a tainted function is tainted.

    ``seeds`` maps function keys to a human-readable witness (the direct
    source); the result maps every tainted function to the next hop
    toward a source, so findings can print the full chain.
    """
    tainted: dict[FuncKey, str] = dict(seeds)
    # reverse edges: callee key -> [(caller key, call line)]
    callers: dict[FuncKey, list[tuple[FuncKey, int]]] = {}
    for module, facts in project.modules.items():
        if _matches_any(facts.module_path, exempt):
            continue
        for site in facts.calls:
            resolved = project.resolve_call(module, site)
            if resolved is None:
                continue
            caller_key = (module, site.caller)
            callers.setdefault(resolved, []).append((caller_key, site.line))
    work = list(tainted)
    while work:
        callee = work.pop()
        for caller_key, _line in callers.get(callee, ()):
            if caller_key in tainted or caller_key[1] == "<module>":
                continue
            caller_facts = project.modules.get(caller_key[0])
            if caller_facts is None or _matches_any(
                caller_facts.module_path, exempt
            ):
                continue
            tainted[caller_key] = _describe(callee)
            work.append(caller_key)
    return tainted


def _describe(key: FuncKey) -> str:
    return f"{key[0]}.{key[1]}"


def _chain(
    start: FuncKey, tainted: Mapping[FuncKey, str], seeds: Mapping[FuncKey, str]
) -> str:
    """Render ``a.f -> b.g -> time.time()`` from the witness links."""
    hops: list[str] = []
    key: FuncKey | None = start
    seen: set[FuncKey] = set()
    while key is not None and key not in seen:
        seen.add(key)
        hops.append(_describe(key))
        if key in seeds:
            hops.append(seeds[key])
            break
        witness = tainted.get(key)
        next_key: FuncKey | None = None
        if witness is not None:
            for candidate in tainted:
                if _describe(candidate) == witness:
                    next_key = candidate
                    break
        key = next_key
    return " -> ".join(hops)


def _taint_findings(
    project: ProjectContext,
    rule_id: str,
    seeds: dict[FuncKey, str],
    scope: tuple[str, ...],
    exempt: tuple[str, ...],
    what: str,
    remedy: str,
) -> Iterator[Finding]:
    """Findings at cross-module call sites into tainted functions."""
    tainted = _propagate(project, seeds, exempt)
    if not tainted:
        return
    for module in sorted(project.modules):
        facts = project.modules[module]
        if not _matches_any(facts.module_path, scope):
            continue
        if _matches_any(facts.module_path, exempt):
            continue
        for site in facts.calls:
            resolved = project.resolve_call(module, site)
            if resolved is None or resolved[0] == module:
                continue  # same-module flows are the per-file rules' turf
            if resolved not in tainted:
                continue
            chain = _chain(resolved, tainted, seeds)
            yield Finding(
                path=facts.rel_path,
                line=site.line,
                col=site.col,
                rule=rule_id,
                message=(
                    f"call to {site.callee}() lets {what} reach "
                    f"{facts.module_path} through {chain}; {remedy}"
                ),
            )


def _seed_sources(project: ProjectContext, kind: str, exempt: tuple[str, ...]) -> dict[FuncKey, str]:
    seeds: dict[FuncKey, str] = {}
    for module in sorted(project.modules):
        facts = project.modules[module]
        if _matches_any(facts.module_path, exempt):
            continue
        for source in facts.sources:
            if source.kind != kind or source.caller == "<module>":
                continue
            key = (module, source.caller)
            if key not in seeds:
                seeds[key] = f"{source.name}() at {facts.module_path}:{source.line}"
    return seeds


@register
class DetClockFlowRule(ProjectRule):
    """Wall-clock values must not flow into sim-path code via helpers.

    The per-file ``DET-CLOCK`` rule polices the read itself; this rule
    polices the *value*: any function that (transitively) reads a wall
    clock taints its callers, and a cross-module call into a tainted
    function from ``cluster/``, ``core/``, ``serving/``, ``retrieval/``
    or ``policies/`` is flagged, even when the read is pragma'd as a
    legitimate measurement in its home module.  The telemetry tracer,
    the executor's fan-out stats and the ``bench_*`` harnesses are
    exempt end to end — wall time *is* their output, and it never
    enters sim results.
    """

    id = "DET-CLOCK-FLOW"
    summary = "wall-clock value flowing into sim-path code"
    rationale = (
        "A helper that reads the wall clock poisons every sim-path "
        "caller transitively; latency/power results stop being a pure "
        "function of (seed, config)."
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        seeds = _seed_sources(project, "clock", _CLOCK_EXEMPT)
        yield from _taint_findings(
            project,
            self.id,
            seeds,
            scope=_CLOCK_SCOPE,
            exempt=_CLOCK_EXEMPT,
            what="a wall-clock reading",
            remedy=(
                "sim-path code must tell time via the sim-clock; route "
                "measurements through telemetry or pass values in explicitly"
            ),
        )


@register
class DetRngFlowRule(ProjectRule):
    """Unseeded randomness must not escape into the cluster/serving path.

    Seeds are functions that draw from the process-global ``random``
    module, numpy's global ``RandomState``, or an unseeded
    ``default_rng()`` — including draws pragma'd for local use.  Any
    cross-module call chain carrying that state into ``cluster/``,
    ``retrieval/`` or ``serving/`` breaks run reproducibility, which is
    exactly what the bit-identity CI gates cannot detect (they compare
    *within* one process, sharing the hidden RNG state).
    """

    id = "DET-RNG-FLOW"
    summary = "process-global randomness flowing into cluster/retrieval/serving"
    rationale = (
        "Global RNG state smuggled through helpers makes two identical "
        "configurations diverge; seeded generators must be threaded "
        "explicitly into the sim path."
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        seeds = _seed_sources(project, "rng", ())
        yield from _taint_findings(
            project,
            self.id,
            seeds,
            scope=_RNG_SCOPE,
            exempt=(),
            what="process-global RNG state",
            remedy=(
                "thread an explicitly seeded random.Random / "
                "np.random.Generator parameter through the chain instead"
            ),
        )


@register
class ParPickleFlowRule(ProjectRule):
    """Unpicklable callables must not reach a process pool via helpers.

    Per function, compute which parameters flow (directly or through
    further calls) into a process-pool ``submit``/``map`` argument; then
    flag any call site that feeds a lambda or nested function into such
    a parameter.  The direct submission site is the per-file
    ``PAR-PICKLE`` rule's job and is skipped here.
    """

    id = "PAR-PICKLE-FLOW"
    summary = "lambda/closure reaching a process pool through helpers"
    rationale = (
        "Closures fail to pickle only when the pool finally sees them — "
        "far from the call that introduced them; descriptors must be "
        "picklable at the source."
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        sink_params, witnesses = self._sink_params(project)
        if not sink_params:
            return
        for module in sorted(project.modules):
            facts = project.modules[module]
            for site in facts.calls:
                if site.is_sink:
                    continue  # direct submissions: per-file PAR-PICKLE
                resolved = project.resolve_call(module, site)
                if resolved is None:
                    continue
                sinky = sink_params.get(resolved)
                if not sinky:
                    continue
                for arg in site.args:
                    if arg.kind not in (ARG_LAMBDA, ARG_NESTED):
                        continue
                    param = _param_at_slot(project, resolved, site, arg.slot)
                    if param is None or param not in sinky:
                        continue
                    described = (
                        "lambda"
                        if arg.kind == ARG_LAMBDA
                        else f"nested function {arg.name!r}"
                    )
                    chain = self._sink_chain(resolved, param, witnesses)
                    yield Finding(
                        path=facts.rel_path,
                        line=arg.line,
                        col=arg.col,
                        rule=self.id,
                        message=(
                            f"{described} passed to {site.callee}() flows "
                            f"into a process-pool submit/map via {chain}; "
                            "pass a picklable module-level callable or "
                            "descriptor (e.g. ShardSearchTask) instead"
                        ),
                    )

    def _sink_params(
        self, project: ProjectContext
    ) -> tuple[
        dict[FuncKey, frozenset[str]],
        dict[tuple[str, str, str], str],
    ]:
        """Fixpoint over "this parameter reaches a process pool".

        Returns the sink-param sets plus a witness map
        ``(module, qualname, param) -> next hop description``.
        """
        sinks: dict[FuncKey, set[str]] = {}
        witness: dict[tuple[str, str, str], str] = {}
        # seed: params used as args at a direct process submit/map site
        for module, facts in sorted(project.modules.items()):
            for site in facts.calls:
                if not site.is_sink or site.caller == "<module>":
                    continue
                for arg in site.args:
                    if arg.kind == ARG_PARAM:
                        key = (module, site.caller)
                        if arg.name not in sinks.setdefault(key, set()):
                            sinks[key].add(arg.name)
                            witness[(module, site.caller, arg.name)] = (
                                f"{site.callee}() at "
                                f"{facts.module_path}:{site.line}"
                            )
        # propagate: param passed into a callee's sink param
        changed = True
        while changed:
            changed = False
            for module, facts in sorted(project.modules.items()):
                for site in facts.calls:
                    if site.is_sink or site.caller == "<module>":
                        continue
                    resolved = project.resolve_call(module, site)
                    if resolved is None:
                        continue
                    callee_sinks = sinks.get(resolved)
                    if not callee_sinks:
                        continue
                    for arg in site.args:
                        if arg.kind != ARG_PARAM:
                            continue
                        target_param = _param_at_slot(
                            project, resolved, site, arg.slot
                        )
                        if target_param is None or target_param not in callee_sinks:
                            continue
                        caller_key = (module, site.caller)
                        if arg.name not in sinks.setdefault(caller_key, set()):
                            sinks[caller_key].add(arg.name)
                            witness[(module, site.caller, arg.name)] = (
                                f"{_describe(resolved)}({target_param})"
                            )
                            changed = True
        return (
            {key: frozenset(params) for key, params in sinks.items()},
            witness,
        )

    def _sink_chain(
        self,
        key: FuncKey,
        param: str,
        witnesses: dict[tuple[str, str, str], str],
    ) -> str:
        hops = [f"{_describe(key)}({param})"]
        seen = set()
        current = (key[0], key[1], param)
        while current in witnesses and current not in seen:
            seen.add(current)
            hop = witnesses[current]
            hops.append(hop)
            # follow "module.qual(param)" witnesses one more level
            if hop.endswith(")") and "(" in hop and " at " not in hop:
                target, target_param = hop[:-1].rsplit("(", 1)
                module, _, qualname = target.rpartition(".")
                # qualnames may contain one dot (Class.method)
                candidates = [
                    (module, qualname),
                    tuple(target.split(".", 2)[0:2]) if target.count(".") >= 2 else None,
                ]
                next_key = None
                for candidate in candidates:
                    if candidate is not None and (
                        candidate[0],
                        candidate[1],
                        target_param,
                    ) in witnesses:
                        next_key = (candidate[0], candidate[1], target_param)
                        break
                if next_key is None:
                    break
                current = next_key
            else:
                break
        return " -> ".join(hops)


def _param_at_slot(
    project: ProjectContext,
    callee: FuncKey,
    site: CallSite,
    slot: str,
) -> str | None:
    """Map a call-site argument slot onto the callee's parameter name."""
    info = project.function(callee)
    if info is None:
        return None
    if slot.startswith("k:"):
        name = slot[2:]
        return name if name in info.params else None
    index = int(slot)
    offset = 0
    if info.is_method and "." in site.callee:
        # bound call (self.m(...), obj.m(...), alias.Class-less): the
        # receiver consumes the first declared parameter.
        head = site.callee.split(".", 1)[0]
        bound = project.bindings.get(callee[0], {})
        # "mod.func(...)" via a module alias is *not* a bound call
        if not (head in bound and ":" not in bound.get(head, ":")):
            offset = 1
    elif info.is_method and "." not in site.callee:
        offset = 0  # unbound reference is unusual; assume explicit self
    position = index + offset
    if position < len(info.params):
        return info.params[position]
    return None
