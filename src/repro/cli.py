"""Command-line interface.

Four subcommands cover the common workflows::

    repro build-index --scale small --out index_dir/   # corpus -> shards -> disk
    repro search index_dir/ canada weather             # query a saved index
    repro compare --scale unit --trace wikipedia       # policy comparison table
    repro figure fig10 --scale small                   # one paper figure/table
    repro bench --scale small --out BENCH_inference.json  # inference microbench
    repro trace --policy cottage --export perfetto     # telemetry-traced run
    repro faults --scale unit --replicas 2             # fault scenario matrix
    repro serve --scale unit --policy cottage          # open-loop QPS sweep
    repro select sweep --out SWEEP_selection.json      # oracle traversal sweep
    repro select train --dataset sweep.npz --out m.npz # train the selector
    repro select bench --out BENCH_selection.json      # selection ablation
    repro lint src/repro                               # determinism linter

``python -m repro ...`` works identically.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro.experiments import (
    Scale,
    Testbed,
    fig02_variation,
    fig03_policy_example,
    fig04_frequency,
    fig06_score_distribution,
    fig07_quality_predictor,
    fig08_latency_predictor,
    fig09_budget_example,
    fig10_latency,
    fig11_quality,
    fig12_scatter,
    fig13_active_isns,
    fig14_power,
    fig15_ablation,
    headline,
    tables_features,
)
from repro.metrics import comparison_table

FIGURES: dict[str, object] = {
    "fig02": fig02_variation,
    "fig03": fig03_policy_example,
    "fig04": fig04_frequency,
    "fig06": fig06_score_distribution,
    "fig07": fig07_quality_predictor,
    "fig08": fig08_latency_predictor,
    "fig09": fig09_budget_example,
    "fig10": fig10_latency,
    "fig11": fig11_quality,
    "fig12": fig12_scatter,
    "fig13": fig13_active_isns,
    "fig14": fig14_power,
    "fig15": fig15_ablation,
    "tables": tables_features,
    "headline": headline,
}

ALL_POLICIES = (
    "exhaustive", "aggregation", "taily", "rank_s",
    "cottage_without_ml", "cottage_isn", "cottage",
)


def _scale(name: str) -> Scale:
    try:
        return getattr(Scale, name)()
    except AttributeError:
        raise SystemExit(f"unknown scale {name!r}; use unit, small or full")


def _cmd_build_index(args: argparse.Namespace) -> int:
    from repro.index import build_shards, partition_topical, save_shards
    from repro.text import WhitespaceAnalyzer
    from repro.workloads import SyntheticCorpus

    scale = _scale(args.scale)
    print(f"generating corpus ({scale.corpus.n_docs} docs)...")
    corpus = SyntheticCorpus(scale.corpus)
    print(f"indexing {scale.n_shards} shards...")
    shards = build_shards(
        partition_topical(corpus.documents, scale.n_shards, seed=scale.seed),
        analyzer=WhitespaceAnalyzer(),
    )
    save_shards(shards, args.out)
    total_terms = sum(s.vocabulary_size() for s in shards)
    print(f"wrote {len(shards)} shards ({total_terms} term entries) to {args.out}")
    return 0


def _cmd_index_build(args: argparse.Namespace) -> int:
    """Generate a corpus and pack it straight into ``.store`` shards."""
    from repro.index import build_shards, pack_shards, partition_topical
    from repro.text import WhitespaceAnalyzer
    from repro.workloads import SyntheticCorpus

    scale = _scale(args.scale)
    print(f"generating corpus ({scale.corpus.n_docs} docs)...")
    corpus = SyntheticCorpus(scale.corpus)
    print(f"indexing {scale.n_shards} shards...")
    shards = build_shards(
        partition_topical(corpus.documents, scale.n_shards, seed=scale.seed),
        analyzer=WhitespaceAnalyzer(),
    )
    paths = pack_shards(shards, args.out)
    print(f"packed {len(paths)} store shards to {args.out}")
    return 0


def _cmd_index_pack(args: argparse.Namespace) -> int:
    """Re-pack a saved npz index into compressed mmap-backed stores."""
    from repro.index import load_shards, pack_shards, store_info

    shards = load_shards(args.index)
    paths = pack_shards(shards, args.out)
    total_file = total_raw = 0
    for path in paths:
        info = store_info(path)
        total_file += info["file_bytes"]
        total_raw += info["raw_column_bytes"]
    ratio = total_raw / total_file if total_file else 1.0
    print(
        f"packed {len(paths)} shards to {args.out}: "
        f"{total_file / 1e6:.2f} MB on disk vs {total_raw / 1e6:.2f} MB raw "
        f"columns ({ratio:.2f}x compression)"
    )
    return 0


def _cmd_index_info(args: argparse.Namespace) -> int:
    """Describe every ``.store`` shard in a packed index directory."""
    from pathlib import Path

    from repro.index import store_info

    paths = sorted(Path(args.index).glob("shard_*.store"))
    if not paths:
        print(f"no shard_*.store files under {args.index}", file=sys.stderr)
        return 1
    for path in paths:
        info = store_info(path)
        meta = info["meta"]
        print(
            f"{path.name}: shard {meta['shard_id']}  "
            f"{meta['n_docs']} docs  {meta['n_terms']} terms  "
            f"{meta['n_postings']} postings  "
            f"{info['file_bytes'] / 1e6:.2f} MB "
            f"({info['compression_ratio']:.2f}x vs raw columns)"
        )
    return 0


def _load_index(path: str):
    """Open an index directory: ``.store`` files when present, else npz.

    A directory packed by ``repro index pack`` holds compressed
    mmap-backed ``shard_*.store`` files that open in O(1); legacy
    ``build-index`` output holds ``shard_*.npz``.  Either works for
    every command that reads an index.
    """
    from pathlib import Path

    from repro.index import load_shards, open_stores

    if sorted(Path(path).glob("shard_*.store")):
        return open_stores(path)
    return load_shards(path)


def _cmd_search(args: argparse.Namespace) -> int:
    from repro.retrieval import DistributedSearcher, Query, make_executor
    from repro.text import StandardAnalyzer, WhitespaceAnalyzer

    shards = _load_index(args.index)
    if args.decode_cache is not None:
        touched = 0
        for shard in shards:
            arena = getattr(shard, "_arena", None)
            resize = getattr(arena, "set_cache_budget", None)
            if resize is not None:
                resize(args.decode_cache)
                touched += 1
        print(f"decode LRU budget {args.decode_cache} B on {touched} shard(s)")
    analyzer = WhitespaceAnalyzer() if args.raw_terms else StandardAnalyzer()
    query = Query.from_text(" ".join(args.terms), analyzer)
    if not query.terms:
        print("query analyzed to no terms", file=sys.stderr)
        return 1
    selector = None
    if args.selector:
        from repro.index.term_stats import TermStatsIndex
        from repro.predictors.features import TermFeatureCache
        from repro.predictors.selector import LearnedSelector

        cache = TermFeatureCache(
            [TermStatsIndex(shard, k=args.k) for shard in shards]
        )
        try:
            selector = LearnedSelector.load(args.selector, cache)
        except (ValueError, KeyError, OSError) as exc:
            print(f"cannot load selector: {exc}", file=sys.stderr)
            return 1
    with make_executor(args.workers, backend=args.backend) as executor:
        searcher = DistributedSearcher(
            shards, k=args.k, strategy=args.strategy, executor=executor
        )
        result = searcher.search(query, selector=selector)
        stats = executor.last_stats
    print(f"terms: {list(query.terms)}  ({result.cost.docs_evaluated} docs evaluated)")
    if selector is not None:
        picks = [
            (selector.choose(query, shard.shard_id, None) or object())
            for shard in shards
        ]
        chosen = [getattr(choice, "strategy", None) or args.strategy for choice in picks]
        counts: dict[str, int] = {}
        for name in chosen:
            counts[name] = counts.get(name, 0) + 1
        summary = ", ".join(f"{name} x{n}" for name, n in sorted(counts.items()))
        print(f"selector picks: {summary}")
    if args.decode_cache is not None:
        hits = misses = evictions = 0
        for shard in shards:
            arena = getattr(shard, "_arena", None)
            decode = getattr(arena, "decode_stats", None)
            if decode is not None:
                hits += decode.hits
                misses += decode.misses
                evictions += decode.evictions
        print(
            f"decode LRU: {hits} hits, {misses} misses, {evictions} evictions"
        )
    if stats is not None and executor.workers > 1:
        print(
            f"fan-out: {stats.n_tasks} shards x {executor.workers} workers, "
            f"critical path {stats.critical_path_ms:.3f} ms "
            f"(serial {stats.serial_ms:.3f} ms, "
            f"modeled speedup {stats.modeled_speedup:.1f}x)"
        )
    for rank, (doc_id, score) in enumerate(result.hits, start=1):
        print(f"  {rank:2d}. doc {doc_id:<8d} score {score:.4f}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    testbed = Testbed.build(_scale(args.scale), workers=args.workers)
    names = tuple(args.policies) if args.policies else ALL_POLICIES
    traces = {
        "wikipedia": (testbed.wikipedia_trace,),
        "lucene": (testbed.lucene_trace,),
        "both": (testbed.wikipedia_trace, testbed.lucene_trace),
    }[args.trace]
    for trace in traces:
        rows = [testbed.summarize(trace, name) for name in names]
        print(comparison_table(rows, title=f"{trace.name} trace"))
        print()
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    module = FIGURES.get(args.name)
    if module is None:
        print(
            f"unknown figure {args.name!r}; options: {', '.join(sorted(FIGURES))}",
            file=sys.stderr,
        )
        return 1
    testbed = Testbed.build(_scale(args.scale), workers=args.workers)
    print(module.format_report(module.run(testbed)))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.experiments import bench_inference

    testbed = Testbed.build(_scale(args.scale), workers=args.workers)
    result = bench_inference.run(testbed, repeats=args.repeats)
    print(bench_inference.format_report(result))
    if args.out:
        bench_inference.write_json(result, args.out)
        print(f"wrote {args.out}")
    if not result.bit_identical:
        print("FAIL: batched predictions are not bit-identical", file=sys.stderr)
        return 1
    if result.speedup < args.fail_below:
        print(
            f"FAIL: speedup {result.speedup:.2f}x below "
            f"--fail-below {args.fail_below:.2f}x",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.telemetry import (
        Telemetry,
        flamegraph_summary,
        write_chrome_trace,
        write_spans_jsonl,
    )

    testbed = Testbed.build(_scale(args.scale), workers=args.workers)
    trace = {
        "wikipedia": testbed.wikipedia_trace,
        "lucene": testbed.lucene_trace,
    }[args.trace]
    telemetry = Telemetry()
    result = testbed.cluster.run_trace(
        trace, testbed.make_policy(args.policy), telemetry=telemetry
    )
    print(
        f"replayed {len(result.records)} queries under {result.policy_name!r}: "
        f"{result.events_processed} events, {result.elapsed_ms:.1f} sim ms, "
        f"{len(telemetry.tracer.spans)} spans"
    )
    exports = set(args.export)
    stem = args.out or f"TRACE_{args.policy}_{trace.name}"
    if "perfetto" in exports:
        path = f"{stem}.json"
        count = write_chrome_trace(telemetry, path)
        print(f"wrote {count} trace events to {path} (open in https://ui.perfetto.dev)")
    if "jsonl" in exports:
        path = f"{stem}.jsonl"
        count = write_spans_jsonl(telemetry, path)
        print(f"wrote {count} spans to {path}")
    print()
    print(flamegraph_summary(telemetry, max_rows=args.max_rows))
    if args.metrics:
        print()
        for name, snap in telemetry.metrics.snapshot().items():
            fields = ", ".join(
                f"{key}={value}" for key, value in snap.items() if key != "type"
            )
            print(f"{name} [{snap['type']}]: {fields}")
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    """Run the faults x replication x budget scenario matrix."""
    import json

    from repro.cluster.scenarios import SCENARIOS, default_matrix, run_matrix

    for scenario in args.scenarios:
        if scenario not in SCENARIOS:
            print(
                f"unknown scenario {scenario!r}; options: "
                f"{', '.join(sorted(SCENARIOS))}",
                file=sys.stderr,
            )
            return 1
    testbed = Testbed.build(_scale(args.scale), workers=args.workers)
    trace = {
        "wikipedia": testbed.wikipedia_trace,
        "lucene": testbed.lucene_trace,
    }[args.trace]
    cases = default_matrix(
        policies=tuple(args.policies),
        scenarios=tuple(args.scenarios),
        n_replicas=args.replicas,
    )
    results = run_matrix(
        testbed.cluster,
        testbed.make_policy,
        trace,
        testbed.truth_for(trace),
        cases,
        seed=args.seed,
        response_timeout_ms=args.response_timeout_ms,
    )
    header = (
        f"{'scenario':<14} {'policy':<12} {'mode':<8} {'R':>2} "
        f"{'p50_ms':>8} {'p99_ms':>8} {'P@K':>6} {'Qloss':>6} "
        f"{'drop':>5} {'hedge':>6} {'waste%':>7}"
    )
    print(header)
    print("-" * len(header))
    for cell in results:
        print(
            f"{cell.scenario:<14} {cell.policy:<12} {cell.mode:<8} "
            f"{cell.n_replicas:>2} {cell.p50_latency_ms:>8.2f} "
            f"{cell.p99_latency_ms:>8.2f} {cell.avg_precision:>6.3f} "
            f"{cell.quality_loss:>6.3f} {cell.avg_dropped_shards:>5.2f} "
            f"{cell.hedges_issued:>6} {100.0 * cell.wasted_work_ratio:>6.1f}%"
        )
    if args.out:
        payload = {
            "scale": args.scale,
            "trace": trace.name,
            "seed": args.seed,
            "response_timeout_ms": args.response_timeout_ms,
            "cells": [cell.row() for cell in results],
        }
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"wrote {args.out}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Open-loop saturation campaign: sweep offered QPS, locate the knee."""
    import json

    from repro.serving import (
        AdmissionConfig,
        CampaignConfig,
        SweepPoint,
        pool_from_corpus,
        run_campaign,
    )
    from repro.serving.campaign import ARRIVAL_KINDS

    if args.policy not in ALL_POLICIES:
        print(
            f"unknown policy {args.policy!r}; options: {', '.join(ALL_POLICIES)}",
            file=sys.stderr,
        )
        return 1
    if args.arrival not in ARRIVAL_KINDS:
        print(
            f"unknown arrival {args.arrival!r}; options: {', '.join(ARRIVAL_KINDS)}",
            file=sys.stderr,
        )
        return 1
    admission = None
    if not args.no_admission:
        admission = AdmissionConfig(
            max_in_flight=args.max_in_flight,
            deadline_slo_ms=args.deadline_slo_ms or None,
        )
    try:
        config = CampaignConfig(
            qps_grid=tuple(args.qps or ()),
            queries_per_point=args.queries,
            arrival=args.arrival,
            seed=args.seed,
            admission=admission,
            cache_capacity=args.cache_capacity,
        )
    except ValueError as exc:
        print(f"invalid campaign: {exc}", file=sys.stderr)
        return 1
    testbed = Testbed.build(_scale(args.scale), workers=args.workers)
    pool = pool_from_corpus(
        testbed.corpus, n_distinct=args.distinct, flavour=args.trace_flavour
    )
    header = (
        f"{'offered':>9} {'realized':>9} {'goodput':>9} {'ratio':>6} "
        f"{'shed':>6} {'p50_ms':>8} {'p99_ms':>8} {'pred_ms':>8} "
        f"{'power_w':>8} {'util':>5}"
    )
    print(header)
    print("-" * len(header))

    def _show(point: SweepPoint) -> None:
        predicted = point.predicted_mean_latency_ms
        print(
            f"{point.offered_qps:>9.1f} {point.realized_qps:>9.1f} "
            f"{point.goodput_qps:>9.1f} {point.goodput_ratio:>6.3f} "
            f"{point.shed:>6} {point.p50_ms:>8.2f} {point.p99_ms:>8.2f} "
            f"{predicted:>8.2f} "
            f"{point.average_power_w:>8.2f} {point.max_core_utilization:>5.2f}"
        )

    result = run_campaign(
        testbed.cluster,
        lambda: testbed.make_policy(args.policy),
        pool,
        config,
        on_point=_show,
        workers=args.workers,
        backend=args.backend,
    )
    print()
    print(
        f"{result.total_queries} queries under {result.policy_name!r} "
        f"({result.arrival} arrivals): predicted saturation "
        f"{result.predicted_knee_qps:.1f} qps, measured knee "
        f"{result.knee.knee_qps:.1f} qps (ratio {result.knee_ratio:.3f}, "
        f"{'saturated' if result.knee.saturated else 'sweep never saturated'})"
    )
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(result.snapshot(), fh, indent=2)
        print(f"wrote {args.out}")
    if args.fail_knee_tolerance is not None and not result.knee_within(
        args.fail_knee_tolerance
    ):
        print(
            f"FAIL: measured knee {result.knee.knee_qps:.1f} qps not within "
            f"{100 * args.fail_knee_tolerance:.0f}% of predicted "
            f"{result.predicted_knee_qps:.1f} qps (or sweep never saturated)",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_select_sweep(args: argparse.Namespace) -> int:
    """Exhaustive (strategy, k-clamp, dispatch-floor) oracle sweep."""
    from repro.experiments import oracle_sweep

    dataset, summary = oracle_sweep.run(
        n_shards=args.n_shards or oracle_sweep.N_SHARDS,
        docs_per_shard=args.docs_per_shard or oracle_sweep.DOCS_PER_SHARD,
        vocab_size=args.vocab_size or oracle_sweep.VOCAB_SIZE,
        n_queries=args.n_queries or oracle_sweep.N_QUERIES,
        k=args.k or oracle_sweep.K,
        seed=args.seed if args.seed is not None else oracle_sweep.SEED,
    )
    print(oracle_sweep.format_report(summary))
    if args.dataset:
        dataset.save(args.dataset)
        print(f"wrote labeled dataset {args.dataset}")
    if args.out:
        oracle_sweep.write_json(summary, args.out)
        print(f"wrote {args.out}")
    return 0 if summary.rank_safe else 1


def _cmd_select_train(args: argparse.Namespace) -> int:
    """Train the learned selector from a saved oracle-sweep dataset."""
    import numpy as np

    from repro.experiments import bench_selection, oracle_sweep
    from repro.experiments.bench_retrieval import build_corpus
    from repro.experiments.oracle_sweep import SweepDataset
    from repro.index.term_stats import TermStatsIndex
    from repro.predictors.features import TermFeatureCache
    from repro.predictors.selector import LearnedSelector

    seed = args.seed if args.seed is not None else oracle_sweep.SEED
    dataset = SweepDataset.load(args.dataset)
    shards = build_corpus(
        dataset.n_shards,
        args.docs_per_shard or oracle_sweep.DOCS_PER_SHARD,
        args.vocab_size or oracle_sweep.VOCAB_SIZE,
        seed,
    )
    cache = TermFeatureCache(
        [TermStatsIndex(shard, k=dataset.k) for shard in shards]
    )
    selector = LearnedSelector(
        cache,
        hidden_units=args.hidden_units or bench_selection.HIDDEN_UNITS,
        seed=seed,
    )
    accuracies = selector.fit(
        dataset.term_tuples,
        dataset.labels(),
        iterations=args.iterations or bench_selection.ITERATIONS,
        seed=seed,
    )
    print(
        f"trained {dataset.n_shards} shard models on "
        f"{dataset.n_queries} queries: mean train accuracy "
        f"{100 * float(np.mean(accuracies)):.1f}%"
    )
    selector.save(args.out)
    print(f"wrote {args.out}")
    return 0


def _cmd_select_bench(args: argparse.Namespace) -> int:
    """Static-vs-learned-vs-oracle ablation with the CI gates."""
    from repro.experiments import bench_selection

    result = bench_selection.run(
        n_shards=args.n_shards or bench_selection.N_SHARDS,
        docs_per_shard=args.docs_per_shard or bench_selection.DOCS_PER_SHARD,
        vocab_size=args.vocab_size or bench_selection.VOCAB_SIZE,
        n_queries=args.n_queries or bench_selection.N_QUERIES,
        k=args.k or bench_selection.K,
        seed=args.seed if args.seed is not None else bench_selection.SEED,
        iterations=args.iterations or bench_selection.ITERATIONS,
        with_sim=not args.no_sim,
    )
    print(bench_selection.format_report(result))
    if args.out:
        bench_selection.write_json(result, args.out)
        print(f"wrote {args.out}")
    if not result.rank_safe or not result.bit_identical:
        print("FAIL: equivalence contract violated", file=sys.stderr)
        return 1
    if result.learned_mean_ms > result.best_static_mean_ms:
        print(
            f"FAIL: learned mean {result.learned_mean_ms:.3f} ms exceeds "
            f"best static {result.best_static_mean_ms:.3f} ms",
            file=sys.stderr,
        )
        return 1
    if result.gap_closed_pct < args.min_gap_closed:
        print(
            f"FAIL: {result.gap_closed_pct:.1f}% of the oracle gap closed, "
            f"gate requires >= {args.min_gap_closed:.1f}%",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    """Run simlint.  Exit-code contract: 0 clean, 1 findings, 2 internal error."""
    import json as _json
    from pathlib import Path

    from repro.analysis import Baseline, LintEngine, get_rules, to_sarif

    try:
        root = Path(args.root).resolve()
        rules = get_rules(args.rules if args.rules else None)
        cache_path = None if args.no_cache else (
            Path(args.cache) if args.cache else root / ".simlint-cache.json"
        )
        baseline_path = (
            Path(args.baseline) if args.baseline else root / "simlint-baseline.json"
        )
        baseline = Baseline.load(baseline_path) if baseline_path.exists() else None
        engine = LintEngine(
            root=root,
            rules=rules,
            cache_path=cache_path,
            baseline=None if args.write_baseline else baseline,
            jobs=max(1, args.jobs),
        )
        paths = [Path(p) for p in args.paths]
        if args.graph:
            project = engine.graph(paths)
            if args.graph == "dot":
                print(project.to_dot(), end="")
            else:
                print(_json.dumps(project.to_json(), indent=2))
            return 0
        report = engine.run(paths)
    except Exception as exc:  # the contract: *any* analyzer failure is exit 2
        print(f"simlint: internal error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        Baseline.from_findings(report.findings).save(baseline_path)
        print(
            f"simlint: wrote {len(report.findings)} finding(s) to {baseline_path}"
        )
        return 0

    if args.format == "sarif":
        print(_json.dumps(to_sarif(report, rules), indent=2))
    else:
        for finding in report.findings:
            print(finding.render())
            if args.format == "github":
                print(finding.render_github())
        for error in report.errors:
            print(error.render(), file=sys.stderr)
            if args.format == "github":
                print(f"::error file={error.path}::{error.message}")
    for warning in report.warnings:
        print(warning.render(), file=sys.stderr)
    summary = (
        f"simlint: {report.files_scanned} file(s), "
        f"{len(report.findings)} finding(s), {len(report.errors)} error(s)"
    )
    details = []
    if report.pragma_suppressed:
        details.append(f"{report.pragma_suppressed} pragma-suppressed")
    if report.baseline_suppressed:
        details.append(f"{report.baseline_suppressed} baselined")
    if report.warnings:
        details.append(f"{len(report.warnings)} warning(s)")
    if report.cache_hits:
        details.append(f"{report.cache_hits} cache hit(s)")
    if details:
        summary += " (" + ", ".join(details) + ")"
    print(summary, file=sys.stderr if args.format == "sarif" else sys.stdout)
    return report.exit_code()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Cottage (HPCA 2022) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    build = sub.add_parser("build-index", help="generate a corpus and save shards")
    build.add_argument("--scale", default="small")
    build.add_argument("--out", required=True, help="output directory")
    build.set_defaults(fn=_cmd_build_index)

    index = sub.add_parser(
        "index", help="compressed mmap-backed store shards (.store format)"
    )
    index_sub = index.add_subparsers(dest="index_command", required=True)
    index_build = index_sub.add_parser(
        "build", help="generate a corpus and pack store shards directly"
    )
    index_build.add_argument("--scale", default="small")
    index_build.add_argument("--out", required=True, help="output directory")
    index_build.set_defaults(fn=_cmd_index_build)
    index_pack = index_sub.add_parser(
        "pack", help="re-pack a saved npz index into .store shards"
    )
    index_pack.add_argument("index", help="directory written by build-index")
    index_pack.add_argument("--out", required=True, help="output directory")
    index_pack.set_defaults(fn=_cmd_index_pack)
    index_info = index_sub.add_parser(
        "info", help="describe every .store shard in a packed directory"
    )
    index_info.add_argument("index", help="directory of shard_*.store files")
    index_info.set_defaults(fn=_cmd_index_info)

    workers_help = (
        "shard fan-out worker threads (default 1 = serial; results are "
        "bit-identical at any worker count)"
    )
    backend_help = (
        "fan-out mechanism: thread (default), process (workers attach "
        "shards via mmap/shared memory), or serial; results are "
        "bit-identical for every backend"
    )

    search = sub.add_parser("search", help="query a saved index")
    search.add_argument("index", help="directory written by build-index or index pack")
    search.add_argument("terms", nargs="+", help="query text")
    search.add_argument("-k", type=int, default=10)
    search.add_argument("--strategy", default="maxscore")
    search.add_argument("--workers", type=int, default=1, help=workers_help)
    search.add_argument(
        "--backend", default="thread", choices=("thread", "process", "serial"),
        help=backend_help,
    )
    search.add_argument(
        "--raw-terms", action="store_true",
        help="skip English analysis (synthetic 'tNNN' vocabularies)",
    )
    search.add_argument(
        "--selector", default="",
        help="trained strategy-selector file (repro select train); picks "
        "the traversal per shard instead of --strategy",
    )
    search.add_argument(
        "--decode-cache", type=int, default=None, metavar="BYTES",
        help="re-budget every compressed shard's decode LRU before "
        "searching and report hit/miss/eviction counts after",
    )
    search.set_defaults(fn=_cmd_search)

    compare = sub.add_parser("compare", help="run the policy comparison")
    compare.add_argument("--scale", default="unit")
    compare.add_argument("--trace", default="both",
                         choices=("wikipedia", "lucene", "both"))
    compare.add_argument("--policies", nargs="*", metavar="POLICY")
    compare.add_argument("--workers", type=int, default=1, help=workers_help)
    compare.set_defaults(fn=_cmd_compare)

    figure = sub.add_parser("figure", help="reproduce one paper figure/table")
    figure.add_argument("name", help=f"one of: {', '.join(sorted(FIGURES))}")
    figure.add_argument("--scale", default="unit")
    figure.add_argument("--workers", type=int, default=1, help=workers_help)
    figure.set_defaults(fn=_cmd_figure)

    bench = sub.add_parser(
        "bench", help="run the batched-inference microbenchmark"
    )
    bench.add_argument("--scale", default="small")
    bench.add_argument("--repeats", type=int, default=3)
    bench.add_argument("--out", default="", help="write BENCH_inference.json here")
    bench.add_argument(
        "--fail-below", type=float, default=1.0,
        help="exit nonzero if speedup falls below this factor",
    )
    bench.add_argument("--workers", type=int, default=1, help=workers_help)
    bench.set_defaults(fn=_cmd_bench)

    trace_cmd = sub.add_parser(
        "trace", help="run one policy with telemetry and export the trace"
    )
    trace_cmd.add_argument("--policy", default="cottage",
                           help=f"one of: {', '.join(ALL_POLICIES)}")
    trace_cmd.add_argument("--scale", default="unit")
    trace_cmd.add_argument("--trace", default="wikipedia",
                           choices=("wikipedia", "lucene"))
    trace_cmd.add_argument(
        "--export", nargs="*", default=("perfetto",),
        choices=("perfetto", "jsonl"),
        help="trace formats to write (default: perfetto)",
    )
    trace_cmd.add_argument(
        "--out", default="",
        help="output file stem (default TRACE_<policy>_<trace>)",
    )
    trace_cmd.add_argument("--max-rows", type=int, default=60,
                           help="flamegraph summary row cap")
    trace_cmd.add_argument("--metrics", action="store_true",
                           help="also print the metrics registry snapshot")
    trace_cmd.add_argument("--workers", type=int, default=1, help=workers_help)
    trace_cmd.set_defaults(fn=_cmd_trace)

    faults = sub.add_parser(
        "faults",
        help="run the fault-scenario x replication x budget matrix",
    )
    faults.add_argument("--scale", default="unit")
    faults.add_argument("--trace", default="wikipedia",
                        choices=("wikipedia", "lucene"))
    faults.add_argument(
        "--policies", nargs="*", default=("exhaustive", "cottage"),
        metavar="POLICY", help=f"policies to grid (from: {', '.join(ALL_POLICIES)})",
    )
    faults.add_argument(
        "--scenarios", nargs="*",
        default=("outage", "flaky_shard", "slow_replica", "correlated"),
        metavar="SCENARIO", help="fault scenarios to grid",
    )
    faults.add_argument(
        "--replicas", type=int, default=2,
        help="replica count for the hedged/tied cells (default 2)",
    )
    faults.add_argument("--seed", type=int, default=0,
                        help="fault-timeline and selector seed")
    faults.add_argument(
        "--response-timeout-ms", type=float, default=150.0,
        help="safety-net timeout for unbudgeted policies",
    )
    faults.add_argument("--out", default="",
                        help="write the matrix as JSON (BENCH_faults.json)")
    faults.add_argument("--workers", type=int, default=1, help=workers_help)
    faults.set_defaults(fn=_cmd_faults)

    serve = sub.add_parser(
        "serve",
        help="open-loop saturation campaign: QPS sweep, knee vs queueing model",
    )
    serve.add_argument("--scale", default="unit")
    serve.add_argument("--policy", default="cottage",
                       help=f"one of: {', '.join(ALL_POLICIES)}")
    serve.add_argument(
        "--trace-flavour", default="wikipedia",
        choices=("wikipedia", "lucene"),
        help="distinct-query pool flavour (same generators as the traces)",
    )
    serve.add_argument("--distinct", type=int, default=150,
                       help="distinct queries in the Zipf pool")
    serve.add_argument(
        "--qps", type=float, nargs="*", metavar="QPS",
        help="explicit offered-rate grid (default: fractions of the "
        "model-predicted saturation, straddling the knee)",
    )
    serve.add_argument("--queries", type=int, default=2000,
                       help="offered queries per sweep point")
    serve.add_argument(
        "--arrival", default="poisson",
        choices=("poisson", "mmpp", "diurnal", "burst"),
        help="arrival process for every sweep point",
    )
    serve.add_argument("--seed", type=int, default=0,
                       help="campaign seed (arrivals and popularity derive from it)")
    serve.add_argument(
        "--max-in-flight", type=int, default=512,
        help="admission cap on in-flight queries (shed above it)",
    )
    serve.add_argument(
        "--deadline-slo-ms", type=float, default=0.0,
        help="deadline shedding SLO in ms (0 = rule off)",
    )
    serve.add_argument(
        "--no-admission", action="store_true",
        help="disable admission control entirely (queues may grow unboundedly "
        "above saturation)",
    )
    serve.add_argument(
        "--cache-capacity", type=int, default=0,
        help="aggregator result-cache entries (0 = off; the knee gate "
        "assumes off)",
    )
    serve.add_argument("--out", default="",
                       help="write the campaign as JSON (BENCH_serving.json)")
    serve.add_argument(
        "--fail-knee-tolerance", type=float, default=None, metavar="REL",
        help="exit nonzero unless the measured knee is within this relative "
        "tolerance of the model prediction (e.g. 0.25)",
    )
    serve.add_argument("--workers", type=int, default=1, help=workers_help)
    serve.add_argument(
        "--backend", default="thread", choices=("thread", "process", "serial"),
        help=backend_help,
    )
    serve.set_defaults(fn=_cmd_serve)

    select = sub.add_parser(
        "select",
        help="per-(query, shard) adaptive traversal selection workflows",
    )
    select_sub = select.add_subparsers(dest="select_command", required=True)

    def _select_workload_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--n-shards", type=int, default=None)
        p.add_argument("--docs-per-shard", type=int, default=None)
        p.add_argument("--vocab-size", type=int, default=None)
        p.add_argument("--n-queries", type=int, default=None)
        p.add_argument("-k", type=int, default=None)
        p.add_argument("--seed", type=int, default=None)

    select_sweep = select_sub.add_parser(
        "sweep",
        help="run every (strategy, k, floor) combination per (query, shard)",
    )
    _select_workload_args(select_sweep)
    select_sweep.add_argument(
        "--dataset", default="",
        help="write the labeled .npz dataset (input to 'select train')",
    )
    select_sweep.add_argument("--out", default="",
                              help="write the sweep summary JSON")
    select_sweep.set_defaults(fn=_cmd_select_sweep)

    select_train = select_sub.add_parser(
        "train", help="train the learned selector from a sweep dataset"
    )
    select_train.add_argument(
        "--dataset", required=True, help=".npz written by 'select sweep'"
    )
    select_train.add_argument("--docs-per-shard", type=int, default=None)
    select_train.add_argument("--vocab-size", type=int, default=None)
    select_train.add_argument("--seed", type=int, default=None)
    select_train.add_argument("--hidden-units", type=int, default=None)
    select_train.add_argument("--iterations", type=int, default=None)
    select_train.add_argument(
        "--out", required=True, help="selector .npz output path"
    )
    select_train.set_defaults(fn=_cmd_select_train)

    select_bench = select_sub.add_parser(
        "bench", help="static-vs-learned-vs-oracle ablation (gated)"
    )
    _select_workload_args(select_bench)
    select_bench.add_argument("--iterations", type=int, default=None)
    select_bench.add_argument(
        "--min-gap-closed", type=float, default=10.0,
        help="gate: minimum percent of the static-to-oracle gap closed",
    )
    select_bench.add_argument("--no-sim", action="store_true",
                              help="skip the simulated replay ablation")
    select_bench.add_argument("--out", default="",
                              help="write BENCH_selection.json here")
    select_bench.set_defaults(fn=_cmd_select_bench)

    lint = sub.add_parser(
        "lint",
        help="run the simlint determinism analyzer (0 clean, 1 findings, 2 error)",
    )
    lint.add_argument(
        "paths", nargs="+", help="files or directory trees to analyze"
    )
    lint.add_argument(
        "--root", default=".",
        help="repo root for relative paths, cache and baseline (default: cwd)",
    )
    lint.add_argument(
        "--rules", nargs="*", metavar="RULE",
        help="run only these rule ids (default: the full registry)",
    )
    lint.add_argument(
        "--format", default="text", choices=("text", "github", "sarif"),
        help="'github' additionally emits ::error workflow annotations; "
        "'sarif' prints a SARIF 2.1.0 log on stdout (summary on stderr)",
    )
    lint.add_argument(
        "--graph", default="", choices=("", "dot", "json"),
        help="skip linting and export the project import/call graph "
        "(GraphViz dot or JSON) on stdout",
    )
    lint.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="parse cache misses in N worker processes (default 1 = serial; "
        "findings are identical at any job count)",
    )
    lint.add_argument(
        "--no-cache", action="store_true",
        help="ignore and do not write the content-hash result cache",
    )
    lint.add_argument(
        "--cache", default="",
        help="cache file path (default <root>/.simlint-cache.json)",
    )
    lint.add_argument(
        "--baseline", default="",
        help="baseline file path (default <root>/simlint-baseline.json)",
    )
    lint.add_argument(
        "--write-baseline", action="store_true",
        help="snapshot current findings into the baseline and exit 0",
    )
    lint.set_defaults(fn=_cmd_lint)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    fn: Callable[[argparse.Namespace], int] = args.fn
    return fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
