"""repro — a reproduction of Cottage (HPCA 2022).

Cottage: Coordinated Time Budget Assignment for Latency, Quality and Power
Optimization in Web Search (Zhou, Bhuyan, Ramakrishnan).

The package is a complete, self-contained distributed-search stack:

* :mod:`repro.text`, :mod:`repro.index`, :mod:`repro.scoring`,
  :mod:`repro.retrieval` — a from-scratch inverted-index search engine
  (BM25, MaxScore/WAND dynamic pruning, sharding, CSI).
* :mod:`repro.nn`, :mod:`repro.predictors` — numpy neural networks and the
  paper's per-ISN quality/latency predictors (Tables I & II).
* :mod:`repro.cluster` — a discrete-event cluster simulator with DVFS and
  a calibrated package power model.
* :mod:`repro.core` — Algorithm 1 and the Cottage policy (+ ablations).
* :mod:`repro.policies` — exhaustive, aggregation, Rank-S and Taily
  baselines.
* :mod:`repro.workloads`, :mod:`repro.metrics`, :mod:`repro.experiments` —
  synthetic Wikipedia/Lucene-style workloads, evaluation metrics, and one
  harness per paper figure/table.

Quickstart::

    from repro.experiments import Testbed, Scale
    testbed = Testbed.build(Scale.small())
    summaries = testbed.compare_policies(testbed.wikipedia_trace)
"""

from repro.cluster import Decision, QueryRecord, SearchCluster
from repro.core import (
    BudgetDecision,
    BudgetInput,
    CottageISNPolicy,
    CottagePolicy,
    CottageWithoutMLPolicy,
    determine_time_budget,
)
from repro.index import Document, IndexBuilder, IndexShard, build_shards, partition
from repro.metrics import GroundTruth, PolicySummary, comparison_table, summarize_run
from repro.policies import (
    AggregationPolicy,
    ExhaustivePolicy,
    RankSPolicy,
    TailyPolicy,
)
from repro.predictors import PredictorBank
from repro.retrieval import DistributedSearcher, Query, QueryTrace
from repro.workloads import CorpusConfig, SyntheticCorpus, TraceConfig, generate_trace

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Document",
    "IndexBuilder",
    "IndexShard",
    "build_shards",
    "partition",
    "Query",
    "QueryTrace",
    "DistributedSearcher",
    "SearchCluster",
    "Decision",
    "QueryRecord",
    "BudgetInput",
    "BudgetDecision",
    "determine_time_budget",
    "CottagePolicy",
    "CottageWithoutMLPolicy",
    "CottageISNPolicy",
    "ExhaustivePolicy",
    "AggregationPolicy",
    "RankSPolicy",
    "TailyPolicy",
    "PredictorBank",
    "GroundTruth",
    "PolicySummary",
    "summarize_run",
    "comparison_table",
    "CorpusConfig",
    "SyntheticCorpus",
    "TraceConfig",
    "generate_trace",
]
