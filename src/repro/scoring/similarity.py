"""Ranking functions for term-document scoring.

All similarities are *decomposable* (document-at-a-time friendly): the score
of a document for a multi-term query is the sum of independent per-term
contributions.  Each similarity exposes a vectorized form used both by the
query evaluator and by the index-time statistics pass, plus an analytic
per-term upper bound used by the MaxScore/WAND pruning strategies and by the
"Estimated max score" latency feature (paper Table II).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np


class Similarity(ABC):
    """Interface for decomposable term-document similarities."""

    @abstractmethod
    def scores(
        self,
        tfs: np.ndarray,
        doc_lengths: np.ndarray,
        doc_freq: int,
        n_docs: int,
        avg_doc_length: float,
    ) -> np.ndarray:
        """Vectorized per-term scores.

        Parameters
        ----------
        tfs:
            Term frequencies for the postings of one term.
        doc_lengths:
            Lengths (in tokens) of the corresponding documents.
        doc_freq:
            Number of documents containing the term on this shard.
        n_docs:
            Number of documents on the shard.
        avg_doc_length:
            Average document length on the shard.
        """

    @abstractmethod
    def upper_bound(
        self, max_tf: int, doc_freq: int, n_docs: int, avg_doc_length: float
    ) -> float:
        """Analytic upper bound on any document's score for this term."""

    def idf(self, doc_freq: int, n_docs: int) -> float:
        """Inverse document frequency (shared BM25-style formulation)."""
        return math.log(1.0 + (n_docs - doc_freq + 0.5) / (doc_freq + 0.5))


class BM25Similarity(Similarity):
    """Okapi BM25 with Lucene's default-ish parameters.

    ``k1=0.9, b=0.4`` follows the tuned configuration common in the selective
    search literature (Kulkarni & Callan) rather than the textbook 1.2/0.75;
    either works, but the smaller ``b`` keeps score distributions closer to
    the long-tailed shapes shown in the paper's Fig. 6.
    """

    def __init__(self, k1: float = 0.9, b: float = 0.4) -> None:
        if k1 < 0:
            raise ValueError("k1 must be non-negative")
        if not 0.0 <= b <= 1.0:
            raise ValueError("b must be in [0, 1]")
        self.k1 = k1
        self.b = b

    def scores(
        self,
        tfs: np.ndarray,
        doc_lengths: np.ndarray,
        doc_freq: int,
        n_docs: int,
        avg_doc_length: float,
    ) -> np.ndarray:
        tfs = np.asarray(tfs, dtype=np.float64)
        doc_lengths = np.asarray(doc_lengths, dtype=np.float64)
        idf = self.idf(doc_freq, n_docs)
        norm = self.k1 * (1.0 - self.b + self.b * doc_lengths / max(avg_doc_length, 1e-9))
        return idf * tfs * (self.k1 + 1.0) / (tfs + norm)

    def upper_bound(
        self, max_tf: int, doc_freq: int, n_docs: int, avg_doc_length: float
    ) -> float:
        # The BM25 term score increases with tf and decreases with document
        # length, so the bound is attained at tf = max_tf with the shortest
        # conceivable document (length -> 0 gives norm = k1 * (1 - b)).
        idf = self.idf(doc_freq, n_docs)
        norm = self.k1 * (1.0 - self.b)
        return idf * max_tf * (self.k1 + 1.0) / (max_tf + norm)


class TFIDFSimilarity(Similarity):
    """Classic sublinear tf-idf: ``(1 + log tf) * idf`` with length norm."""

    def scores(
        self,
        tfs: np.ndarray,
        doc_lengths: np.ndarray,
        doc_freq: int,
        n_docs: int,
        avg_doc_length: float,
    ) -> np.ndarray:
        tfs = np.asarray(tfs, dtype=np.float64)
        doc_lengths = np.asarray(doc_lengths, dtype=np.float64)
        idf = self.idf(doc_freq, n_docs)
        weight = (1.0 + np.log(np.maximum(tfs, 1.0))) * idf
        return weight / np.sqrt(np.maximum(doc_lengths, 1.0))

    def upper_bound(
        self, max_tf: int, doc_freq: int, n_docs: int, avg_doc_length: float
    ) -> float:
        idf = self.idf(doc_freq, n_docs)
        return (1.0 + math.log(max(max_tf, 1))) * idf


class LMDirichletSimilarity(Similarity):
    """Language model with Dirichlet smoothing, shifted to be non-negative.

    The raw LM-Dirichlet score can be negative; following Lucene, scores are
    clipped at zero so that decomposable pruning bounds remain valid.
    ``collection_prob`` is approximated per-shard as ``doc_freq / total
    tokens`` when the true collection term frequency is unavailable.
    """

    def __init__(self, mu: float = 2000.0) -> None:
        if mu <= 0:
            raise ValueError("mu must be positive")
        self.mu = mu

    def scores(
        self,
        tfs: np.ndarray,
        doc_lengths: np.ndarray,
        doc_freq: int,
        n_docs: int,
        avg_doc_length: float,
    ) -> np.ndarray:
        tfs = np.asarray(tfs, dtype=np.float64)
        doc_lengths = np.asarray(doc_lengths, dtype=np.float64)
        total_tokens = max(n_docs * avg_doc_length, 1.0)
        collection_prob = max(doc_freq / total_tokens, 1e-12)
        raw = np.log1p(tfs / (self.mu * collection_prob)) + math.log(
            self.mu / (self.mu + 1.0)
        )
        raw = raw + np.log1p(self.mu / np.maximum(doc_lengths, 1.0)) * 0.0
        return np.maximum(raw, 0.0)

    def upper_bound(
        self, max_tf: int, doc_freq: int, n_docs: int, avg_doc_length: float
    ) -> float:
        total_tokens = max(n_docs * avg_doc_length, 1.0)
        collection_prob = max(doc_freq / total_tokens, 1e-12)
        raw = math.log1p(max_tf / (self.mu * collection_prob)) + math.log(
            self.mu / (self.mu + 1.0)
        )
        return max(raw, 0.0)
