"""Scoring substrate: ranking functions and score-distribution tools.

``similarity`` provides the ranking functions (BM25 et al.) used by the
retrieval engine and by the index-time term statistics; ``distributions``
provides the Gamma-fitting machinery that Taily and the Cottage-withoutML
ablation rely on (paper Section III-B / Fig. 6).
"""

from repro.scoring.distributions import (
    GammaFit,
    fit_gamma_moments,
    gamma_tail_count,
    score_histogram,
)
from repro.scoring.similarity import (
    BM25Similarity,
    LMDirichletSimilarity,
    Similarity,
    TFIDFSimilarity,
)

__all__ = [
    "Similarity",
    "BM25Similarity",
    "TFIDFSimilarity",
    "LMDirichletSimilarity",
    "GammaFit",
    "fit_gamma_moments",
    "gamma_tail_count",
    "score_histogram",
]
