"""Score-distribution modeling.

Taily (Aly et al., SIGIR'13) — the distributed baseline the paper compares
against — models per-term document scores as a Gamma distribution fitted from
index-time moments, then estimates how many of a shard's documents score
above the global top-K threshold.  This module provides the Gamma machinery
plus the histogram utilities behind the paper's Fig. 6 (which shows how the
fitted Gamma deviates from the true score histogram, motivating Cottage's NN
quality predictor).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as scipy_stats


@dataclass(frozen=True)
class GammaFit:
    """A fitted Gamma distribution over document scores.

    Attributes
    ----------
    shape, scale:
        Standard Gamma parameters (``k`` and ``theta``).
    count:
        Number of observations the fit summarizes (posting-list length for a
        single term).  Tail expectations scale by this count.
    """

    shape: float
    scale: float
    count: int

    @property
    def mean(self) -> float:
        return self.shape * self.scale

    @property
    def variance(self) -> float:
        return self.shape * self.scale**2

    def sf(self, threshold: float) -> float:
        """P(X > threshold) under the fitted Gamma."""
        if threshold <= 0.0:
            return 1.0
        return float(scipy_stats.gamma.sf(threshold, a=self.shape, scale=self.scale))

    def expected_above(self, threshold: float) -> float:
        """Expected number of documents scoring above ``threshold``."""
        return self.count * self.sf(threshold)

    def quantile(self, q: float) -> float:
        """Score value at quantile ``q`` of the fitted Gamma."""
        if not 0.0 < q < 1.0:
            raise ValueError("q must be in (0, 1)")
        return float(scipy_stats.gamma.ppf(q, a=self.shape, scale=self.scale))


def fit_gamma_moments(mean: float, variance: float, count: int) -> GammaFit:
    """Method-of-moments Gamma fit from index-time aggregates.

    This is exactly what Taily stores per term: the mean and variance of the
    term's document scores plus the document count.  Degenerate inputs (zero
    variance, e.g. a term whose every posting scores identically) collapse to
    a near-point mass rather than raising.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    mean = max(float(mean), 1e-9)
    variance = max(float(variance), 1e-12)
    shape = mean**2 / variance
    scale = variance / mean
    return GammaFit(shape=shape, scale=scale, count=count)


def fit_gamma_mle(scores: np.ndarray) -> GammaFit:
    """Maximum-likelihood Gamma fit from raw scores (used in Fig. 6)."""
    scores = np.asarray(scores, dtype=np.float64)
    scores = scores[scores > 0]
    if scores.size == 0:
        return GammaFit(shape=1.0, scale=1e-9, count=0)
    if scores.size == 1 or float(np.var(scores)) < 1e-12:
        return fit_gamma_moments(float(np.mean(scores)), 1e-12, int(scores.size))
    shape, _, scale = scipy_stats.gamma.fit(scores, floc=0.0)
    return GammaFit(shape=float(shape), scale=float(scale), count=int(scores.size))


def combine_gamma_sum(fits: list[GammaFit]) -> GammaFit:
    """Moment-match the distribution of a *sum* of independent Gamma terms.

    Taily aggregates multi-term queries by summing per-term score variables;
    the sum of independent Gammas with different scales is not Gamma, so —
    as in the original paper — we re-fit a Gamma to the summed mean and
    variance.  The count of the combined fit is the minimum posting length,
    the number of documents that could plausibly contain all terms.
    """
    if not fits:
        raise ValueError("need at least one fit to combine")
    total_mean = sum(f.mean for f in fits)
    total_var = sum(f.variance for f in fits)
    count = min(f.count for f in fits)
    return fit_gamma_moments(total_mean, total_var, count)


def gamma_tail_count(fit: GammaFit, threshold: float) -> float:
    """Expected number of documents above ``threshold`` (Taily's ``n_i``)."""
    return fit.expected_above(threshold)


def score_histogram(
    scores: np.ndarray, bins: int = 20
) -> tuple[np.ndarray, np.ndarray]:
    """Histogram of positive document scores (counts, bin edges).

    Documents that do not contain any query term score zero and are excluded,
    matching Fig. 6's "documents without any relevant query terms are
    ignored".
    """
    scores = np.asarray(scores, dtype=np.float64)
    scores = scores[scores > 0]
    if scores.size == 0:
        return np.zeros(bins, dtype=np.int64), np.linspace(0.0, 1.0, bins + 1)
    counts, edges = np.histogram(scores, bins=bins)
    return counts.astype(np.int64), edges


def histogram_tail_count(scores: np.ndarray, threshold: float) -> int:
    """True number of documents scoring above ``threshold``.

    The ground-truth counterpart of :func:`gamma_tail_count`; the gap
    between the two is the Fig. 6 motivation for an NN quality predictor.
    """
    scores = np.asarray(scores, dtype=np.float64)
    return int(np.count_nonzero(scores > threshold))
