"""Baseline ISN-selection policies the paper compares Cottage against."""

from repro.policies.aggregation import AggregationPolicy
from repro.policies.base import BasePolicy
from repro.policies.exhaustive import ExhaustivePolicy
from repro.policies.oracle import OraclePolicy
from repro.policies.rank_s import RankSPolicy
from repro.policies.taily import TailyPolicy

__all__ = [
    "BasePolicy",
    "ExhaustivePolicy",
    "AggregationPolicy",
    "RankSPolicy",
    "TailyPolicy",
    "OraclePolicy",
]
