"""Taily shard selection (Aly et al., SIGIR'13).

The distributed baseline: shard selection from per-term Gamma fits over
index statistics, no CSI, no latency awareness.  As the paper observes
(Fig. 10), Taily's latency barely improves on exhaustive search — it only
drops shards with no estimated contribution, and a zero-quality shard can
still be the straggler.
"""

from __future__ import annotations

from repro.cluster.types import ClusterView, Decision
from repro.policies.base import BasePolicy
from repro.predictors.gamma_quality import TailyQualityEstimator
from repro.retrieval.query import Query


class TailyPolicy(BasePolicy):
    """Gamma-tail shard selection with Taily's ``v`` cutoff."""

    name = "taily"

    def __init__(
        self,
        estimator: TailyQualityEstimator,
        min_expected_docs: float = 0.5,
        coordination_delay_ms: float = 0.05,
    ) -> None:
        """
        Parameters
        ----------
        min_expected_docs:
            Taily's ``v``: a shard is searched when its expected number of
            documents above the global threshold clears this bar.
        coordination_delay_ms:
            Cost of the (cheap, statistics-lookup) estimation round.
        """
        if min_expected_docs < 0:
            raise ValueError("min_expected_docs must be non-negative")
        self.estimator = estimator
        self.min_expected_docs = min_expected_docs
        self.coordination_delay_ms = coordination_delay_ms
        # Selections depend only on immutable index statistics; memoize per
        # distinct query so trace replay doesn't refit Gammas per arrival.
        self._cache: dict[tuple[str, ...], tuple[int, ...]] = {}

    def decide(self, query: Query, view: ClusterView) -> Decision:
        selected = self._cache.get(query.terms)
        if selected is None:
            estimate = self.estimator.estimate(query.terms)
            selected = tuple(estimate.selected(self.min_expected_docs))
            if not selected:
                # Keep the single most promising shard rather than empty.
                best = max(
                    range(view.n_shards),
                    key=lambda sid: estimate.expected_docs[sid],
                )
                selected = (best,)
            self._cache[query.terms] = selected
        return Decision(
            shard_ids=selected, coordination_delay_ms=self.coordination_delay_ms
        )
