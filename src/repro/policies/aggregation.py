"""Epoch-based aggregation policy (Yun et al. SIGIR'15 / Tailcut style).

Broadcasts to every ISN but enforces a single time budget for all queries
in an epoch, chosen from the previous epoch's latency distribution.  The
paper's Fig. 3(b) criticism applies by design: stragglers are dropped with
no regard to their quality contribution.
"""

from __future__ import annotations

from collections import deque

from repro.cluster.types import ClusterView, Decision, QueryRecord
from repro.metrics.latency import percentile
from repro.policies.base import BasePolicy
from repro.retrieval.query import Query


class AggregationPolicy(BasePolicy):
    """Fixed per-epoch budget cutting the latency tail.

    Parameters
    ----------
    budget_percentile:
        Which percentile of the previous epoch's client latencies becomes
        the next epoch's budget ("a time budget ... produces the best
        latency improvement for most of the queries during a short time
        period").
    epoch_queries:
        Epoch length, in completed queries.
    initial_budget_ms:
        Budget used until the first epoch completes.
    """

    name = "aggregation"

    def __init__(
        self,
        budget_percentile: float = 70.0,
        epoch_queries: int = 50,
        initial_budget_ms: float = 50.0,
    ) -> None:
        if not 0.0 < budget_percentile <= 100.0:
            raise ValueError("percentile must be in (0, 100]")
        if epoch_queries < 1:
            raise ValueError("epoch must be at least one query")
        if initial_budget_ms <= 0:
            raise ValueError("initial budget must be positive")
        self.budget_percentile = budget_percentile
        self.epoch_queries = epoch_queries
        self.budget_ms = initial_budget_ms
        self._window: deque[float] = deque(maxlen=epoch_queries)
        self._since_update = 0

    def decide(self, query: Query, view: ClusterView) -> Decision:
        return Decision(
            shard_ids=tuple(range(view.n_shards)),
            time_budget_ms=self.budget_ms,
        )

    def observe(self, record: QueryRecord) -> None:
        self._window.append(record.latency_ms)
        self._since_update += 1
        if self._since_update >= self.epoch_queries and self._window:
            self.budget_ms = max(percentile(list(self._window), self.budget_percentile), 1.0)
            self._since_update = 0
