"""Rank-S selective search (Kulkarni et al., CIKM'12).

A centralized CSI-based baseline: the query first runs against the Central
Sample Index; each sampled hit casts an exponentially decayed vote for its
home shard; shards whose vote mass clears a fixed threshold are searched.
As the paper stresses, Rank-S only knows the *relative* importance of
shards from a 1% sample — it has no per-query notion of contribution to
the actual top-K, which is why its quality trails Cottage badly (Fig. 11).
"""

from __future__ import annotations

from repro.cluster.cpu import CostModel
from repro.cluster.types import ClusterView, Decision
from repro.index.csi import CentralSampleIndex
from repro.policies.base import BasePolicy
from repro.retrieval.query import Query


class RankSPolicy(BasePolicy):
    """CSI search + exponentially decayed votes + fixed cutoff."""

    name = "rank_s"

    def __init__(
        self,
        csi: CentralSampleIndex,
        decay_base: float = 1.2,
        vote_threshold: float = 0.005,
        sample_depth: int = 50,
        cost_model: CostModel | None = None,
        aggregator_freq_ghz: float = 2.1,
    ) -> None:
        """
        Parameters
        ----------
        decay_base:
            Rank-S's B: hit at rank r votes ``score * B^-r``.  The original
            paper explores B in [2, 5]; smaller B keeps deeper hits alive.
        vote_threshold:
            Fixed fraction of the total vote mass a shard needs to be
            selected ("Rank-S uses the fixed threshold for all requests").
        sample_depth:
            How many CSI hits vote.
        cost_model / aggregator_freq_ghz:
            Used to charge the CSI search as aggregator-side coordination
            delay.
        """
        if decay_base <= 1.0:
            raise ValueError("decay base must exceed 1")
        if not 0.0 < vote_threshold < 1.0:
            raise ValueError("vote threshold must be in (0, 1)")
        if sample_depth < 1:
            raise ValueError("sample depth must be positive")
        self.csi = csi
        self.decay_base = decay_base
        self.vote_threshold = vote_threshold
        self.sample_depth = sample_depth
        self.cost_model = cost_model or CostModel()
        self.aggregator_freq_ghz = aggregator_freq_ghz
        # The CSI is immutable, so votes are memoized per distinct query
        # (the CSI search *time* is still charged on every arrival).
        self._cache: dict[tuple[str, ...], tuple[dict[int, float], float]] = {}

    def shard_votes(self, query: Query) -> tuple[dict[int, float], float]:
        """Vote mass per shard and the CSI search's simulated cost (ms)."""
        from repro.retrieval.exhaustive import exhaustive_search

        cached = self._cache.get(query.terms)
        if cached is not None:
            return cached
        result = exhaustive_search(
            self.csi.index, list(query.terms), self.sample_depth
        )
        csi_cost_ms = self.cost_model.service_ms(result.cost, self.aggregator_freq_ghz)
        votes: dict[int, float] = {}
        for rank, (doc_id, score) in enumerate(result.hits):
            shard = self.csi.doc_to_shard[doc_id]
            votes[shard] = votes.get(shard, 0.0) + score * self.decay_base ** -(rank + 1)
        entry = (votes, csi_cost_ms)
        self._cache[query.terms] = entry
        return entry

    def decide(self, query: Query, view: ClusterView) -> Decision:
        votes, csi_cost_ms = self.shard_votes(query)
        total = sum(votes.values())
        if total <= 0.0:
            # Sample saw nothing: fall back to exhaustive (cannot rank).
            return Decision(
                shard_ids=tuple(range(view.n_shards)),
                coordination_delay_ms=csi_cost_ms,
            )
        selected = tuple(
            sorted(
                sid for sid, vote in votes.items() if vote >= self.vote_threshold * total
            )
        )
        if not selected:
            selected = (max(votes, key=lambda sid: votes[sid]),)
        return Decision(shard_ids=selected, coordination_delay_ms=csi_cost_ms)
