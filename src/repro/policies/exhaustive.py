"""Exhaustive search: every ISN, no budget (the paper's baseline)."""

from __future__ import annotations

from repro.cluster.types import ClusterView, Decision
from repro.policies.base import BasePolicy
from repro.retrieval.query import Query


class ExhaustivePolicy(BasePolicy):
    """Broadcast to all ISNs and wait for the slowest.

    P@K is 1 by construction; latency is the straggler's, power the
    highest of all policies — the upper-left anchor of every figure.
    """

    name = "exhaustive"

    def decide(self, query: Query, view: ClusterView) -> Decision:
        return Decision(shard_ids=tuple(range(view.n_shards)))
