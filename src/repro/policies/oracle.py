"""Oracle selection: the upper bound Cottage is chasing.

The oracle sees the exhaustive ground truth and the true service times —
no prediction error anywhere.  It keeps exactly the ISNs that contribute
to the top-K, budgets at the slowest kept ISN's true boosted latency
(plus its queue), and boosts precisely the ISNs that need it.  Its P@K is
1.0 by construction; its latency/resource numbers are the best any
coordinated scheme with Cottage's mechanism could achieve.

Not part of the paper's evaluation — used by
``benchmarks/bench_ext_oracle_gap.py`` to report how much of the
oracle-vs-exhaustive gap Cottage's learned predictions capture.
"""

from __future__ import annotations

from repro.cluster.cpu import equivalent_latency_ms
from repro.cluster.engine import SearchCluster
from repro.cluster.types import ClusterView, Decision
from repro.metrics.quality import GroundTruth
from repro.policies.base import BasePolicy
from repro.retrieval.query import Query


class OraclePolicy(BasePolicy):
    """Perfect-knowledge coordinated selection with frequency boosting."""

    name = "oracle"

    def __init__(
        self,
        cluster: SearchCluster,
        truth: GroundTruth,
        budget_slack: float = 1.0,
    ) -> None:
        """
        Parameters
        ----------
        cluster:
            Supplies the true per-(query, shard) service times.
        truth:
            Exhaustive ground truth covering every query it will see.
        budget_slack:
            Kept for symmetry with CottagePolicy; the oracle needs none
            (its latencies are exact up to queue drift after dispatch).
        """
        if budget_slack < 1.0:
            raise ValueError("budget slack cannot shrink the budget")
        self.cluster = cluster
        self.truth = truth
        self.budget_slack = budget_slack

    def decide(self, query: Query, view: ClusterView) -> Decision:
        contributions = self.truth.get(query).contributions_k
        keep = [sid for sid in range(view.n_shards) if contributions.get(sid, 0) > 0]
        if not keep:
            keep = [0]

        boosted_latency = {}
        current_latency = {}
        for sid in keep:
            service = self.cluster.service_time_ms(query, sid)
            queue = view.queued_predicted_ms[sid]
            current_latency[sid] = equivalent_latency_ms(
                queue, service, view.default_freq_ghz, view.default_freq_ghz
            )
            boosted_latency[sid] = equivalent_latency_ms(
                queue, service, view.default_freq_ghz, view.max_freq_ghz
            )
        budget = max(boosted_latency.values()) * self.budget_slack
        overrides = {
            sid: view.max_freq_ghz
            for sid in keep
            if current_latency[sid] > budget + 1e-9
        }
        return Decision(
            shard_ids=tuple(keep),
            time_budget_ms=budget,
            frequency_overrides=overrides,
        )
