"""Policy base class."""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.cluster.types import ClusterView, Decision, QueryRecord
from repro.retrieval.query import Query


class BasePolicy(ABC):
    """Common scaffolding for ISN-selection policies.

    Subclasses implement :meth:`decide`; :meth:`observe` is an optional
    feedback hook (the epoch-based aggregation baseline uses it to learn
    its budget from completed queries).
    """

    name: str = "base"

    @abstractmethod
    def decide(self, query: Query, view: ClusterView) -> Decision:
        """Choose ISNs, time budget and frequencies for one query."""

    def observe(self, record: QueryRecord) -> None:
        """Feedback after a query completes.  Default: ignore."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"
