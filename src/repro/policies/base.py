"""Policy base class."""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.cluster.types import ClusterView, Decision, QueryRecord
from repro.retrieval.query import Query
from repro.telemetry import NO_TELEMETRY, Telemetry


class BasePolicy(ABC):
    """Common scaffolding for ISN-selection policies.

    Subclasses implement :meth:`decide`; :meth:`observe` is an optional
    feedback hook (the epoch-based aggregation baseline uses it to learn
    its budget from completed queries).

    ``telemetry`` is rebound per run by :meth:`SearchCluster.run_trace`
    (see :meth:`bind_telemetry`); the default is the shared disabled
    session, so policies may instrument unconditionally.
    """

    name: str = "base"
    telemetry: Telemetry = NO_TELEMETRY

    def bind_telemetry(self, telemetry: Telemetry) -> None:
        """Attach the run's telemetry session (instance attribute)."""
        self.telemetry = telemetry

    @abstractmethod
    def decide(self, query: Query, view: ClusterView) -> Decision:
        """Choose ISNs, time budget and frequencies for one query."""

    def observe(self, record: QueryRecord) -> None:
        """Feedback after a query completes.  Default: ignore."""

    def prewarm(self, queries: list[Query]) -> None:
        """Precompute anything the policy will need for ``queries``.

        Called by :meth:`SearchCluster.run_trace` before the event loop
        starts, with the whole trace.  Policies whose per-query work is
        pure and memoized (Cottage's predictor inference) batch it here;
        the decisions themselves are unchanged — only where the wall-clock
        CPU time is spent moves.  Default: do nothing.
        """

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"
