"""Profile-extended predictor features.

The paper: "our prediction features have to be extended to include
user-profile related features".  The extension appends three profile
aggregates to the Table-I vector — the max, mean and min term weight over
the query — enough for a quality model to learn how personalization shifts
each shard's contribution.
"""

from __future__ import annotations

import numpy as np

from repro.index.term_stats import TermStatsIndex
from repro.personalization.profiles import UserProfile
from repro.predictors.features import QUALITY_FEATURE_NAMES, quality_features

PROFILE_FEATURE_NAMES: tuple[str, ...] = (
    "profile_max_term_weight",
    "profile_mean_term_weight",
    "profile_min_term_weight",
)

PERSONALIZED_QUALITY_FEATURE_NAMES: tuple[str, ...] = (
    QUALITY_FEATURE_NAMES + PROFILE_FEATURE_NAMES
)


def personalized_quality_features(
    terms: tuple[str, ...] | list[str],
    stats: TermStatsIndex,
    profile: UserProfile,
) -> np.ndarray:
    """Table-I features plus the query's profile-weight aggregates."""
    base = quality_features(terms, stats)
    weights = np.asarray(profile.weights_for(terms))
    extension = np.array([weights.max(), weights.mean(), weights.min()])
    return np.concatenate([base, extension])
