"""User profiles: per-term score multipliers."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class UserProfile:
    """Personalized term weights for one user.

    A weight above 1 boosts documents matching that term; below 1 damps
    them; absent terms weigh 1.0 (neutral).  Weights multiply the base
    similarity score per term, the standard personalization hook the paper
    sketches.
    """

    user_id: str
    term_weights: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for term, weight in self.term_weights.items():
            if weight < 0.0:
                raise ValueError(f"negative weight for term {term!r}")

    def weight(self, term: str) -> float:
        return self.term_weights.get(term, 1.0)

    def weights_for(self, terms: tuple[str, ...] | list[str]) -> list[float]:
        return [self.weight(term) for term in terms]

    @classmethod
    def neutral(cls, user_id: str = "anonymous") -> "UserProfile":
        return cls(user_id=user_id)

    @classmethod
    def from_interests(
        cls, user_id: str, interests: dict[str, float]
    ) -> "UserProfile":
        """Build a profile from interest strengths in [0, 1].

        Interest s maps to weight 1 + s (interest 1.0 doubles the term's
        contribution) — a simple monotone mapping; the retrieval layer only
        requires non-negative multipliers.
        """
        for term, strength in interests.items():
            if not 0.0 <= strength <= 1.0:
                raise ValueError(f"interest for {term!r} must be in [0, 1]")
        return cls(
            user_id=user_id,
            term_weights={term: 1.0 + s for term, s in interests.items()},
        )
