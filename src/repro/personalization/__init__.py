"""Personalized search (the paper's stated extension).

Section III-B: "If personalized search is adopted by the service provider,
the document scores will also be determined by customized term weights
besides the term itself.  Typically, we will give personalized term-weights
for each person based on the user profile.  In such a case, our prediction
features have to be extended to include user-profile related features."

This package implements exactly that extension: per-user term-weight
profiles, profile-weighted retrieval (scores scale per term, so pruning
bounds stay admissible), and the profile-extended Table-I/II feature
vectors.
"""

from repro.personalization.profiles import UserProfile
from repro.personalization.search import (
    PersonalizedSearcher,
    personalized_search,
)
from repro.personalization.features import (
    PERSONALIZED_QUALITY_FEATURE_NAMES,
    personalized_quality_features,
)

__all__ = [
    "UserProfile",
    "personalized_search",
    "PersonalizedSearcher",
    "PERSONALIZED_QUALITY_FEATURE_NAMES",
    "personalized_quality_features",
]
