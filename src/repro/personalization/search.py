"""Profile-weighted retrieval.

Personalized scores are ``weight(term) * base_score(term, doc)``: the
weighting is per-term, so per-term upper bounds scale by the same factor
and MaxScore/WAND pruning stays admissible.  The implementation scales
each term's precomputed score array once per (query, profile) and runs the
vectorized disjunctive evaluation.
"""

from __future__ import annotations

import numpy as np

from repro.index.shard import IndexShard
from repro.personalization.profiles import UserProfile
from repro.retrieval.query import Query
from repro.retrieval.result import CostStats, SearchResult, merge_results


def personalized_search(
    shard: IndexShard,
    terms: list[str] | tuple[str, ...],
    k: int,
    profile: UserProfile,
) -> SearchResult:
    """Top-k disjunctive evaluation with profile-weighted term scores."""
    if k < 1:
        raise ValueError("k must be positive")
    doc_arrays = []
    score_arrays = []
    n_postings = 0
    for term in terms:
        entry = shard.term(term)
        if entry is None:
            continue
        weight = profile.weight(term)
        doc_arrays.append(entry.postings.doc_ids)
        score_arrays.append(entry.scores * weight)
        n_postings += len(entry.postings)
    if not doc_arrays:
        return SearchResult(hits=[], cost=CostStats(n_terms=len(terms)))

    all_docs = np.concatenate(doc_arrays)
    all_scores = np.concatenate(score_arrays)
    unique_docs, inverse = np.unique(all_docs, return_inverse=True)
    totals = np.zeros(unique_docs.size)
    np.add.at(totals, inverse, all_scores)
    order = np.lexsort((unique_docs, -totals))[: min(k, unique_docs.size)]
    hits = [(int(unique_docs[i]), float(totals[i])) for i in order]
    return SearchResult(
        hits=hits,
        cost=CostStats(
            docs_evaluated=int(unique_docs.size),
            postings_scored=n_postings,
            n_terms=len(terms),
        ),
    )


class PersonalizedSearcher:
    """Distributed profile-weighted retrieval over a shard list.

    The cross-shard merge stays exact because every shard applies the same
    per-term weights to globally comparable scores.
    """

    def __init__(self, shards: list[IndexShard], k: int = 10) -> None:
        if not shards:
            raise ValueError("need at least one shard")
        self.shards = shards
        self.k = k

    def search(
        self,
        query: Query,
        profile: UserProfile,
        shard_ids: list[int] | None = None,
    ) -> SearchResult:
        if shard_ids is None:
            shard_ids = list(range(len(self.shards)))
        per_shard = [
            personalized_search(self.shards[sid], query.terms, self.k, profile)
            for sid in shard_ids
        ]
        return merge_results(per_shard, self.k)

    def shard_contributions(self, query: Query, profile: UserProfile) -> dict[int, int]:
        """Per-shard counts in the personalized global top-k (the quality
        labels a personalized Cottage deployment would train on)."""
        per_shard = {
            sid: set(
                personalized_search(
                    self.shards[sid], query.terms, self.k, profile
                ).doc_ids()
            )
            for sid in range(len(self.shards))
        }
        merged = self.search(query, profile)
        counts = {sid: 0 for sid in range(len(self.shards))}
        for doc_id, _ in merged.hits:
            for sid, docs in per_shard.items():
                if doc_id in docs:
                    counts[sid] += 1
                    break
        return counts
