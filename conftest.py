"""Make `src/` importable for pytest runs even without an editable install.

The offline environment lacks the `wheel` package, so `pip install -e .`
may be unavailable; `python setup.py develop` works, but this shim keeps
`pytest` self-sufficient either way.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "src"))
