"""ProcessExecutor: attach-by-spec fan-out and its determinism guarantee.

The contract: shard searches shipped to worker processes — which attach
the shards from shared memory (in-memory shards) or mmap'd ``.store``
files (packed shards), never via pickle — produce **byte-identical**
merged results to ``SerialExecutor`` at any worker count, and the parent
seeds remote results into its memo caches so replay is local.  Plus the
hygiene around it: closures are rejected up front, shared-memory
segments are unlinked on close, and ``run_trace(backend="process")``
replays traces bit-identically.
"""

from __future__ import annotations

import functools
import random

import pytest

from repro.cluster.engine import RunResult, SearchCluster
from repro.index import open_stores, pack_shards
from repro.policies.exhaustive import ExhaustivePolicy
from repro.retrieval import (
    DistributedSearcher,
    ProcessExecutor,
    Query,
    QueryTrace,
    SerialExecutor,
    ShardSearchTask,
    make_executor,
    prewarm_searchers,
)

WORKER_COUNTS = (1, 2, 4)


def make_queries(n: int = 10, seed: int = 11) -> list[Query]:
    rng = random.Random(seed)
    return [
        Query(
            query_id=i,
            terms=tuple(
                dict.fromkeys(f"t{rng.randint(0, 50)}" for _ in range(3))
            ),
        )
        for i in range(n)
    ]


def double(value: int) -> int:
    return value * 2


def run_fingerprint(run: RunResult) -> str:
    lines = [run.policy_name, repr(run.power)]
    for record in run.records:
        lines.append(
            f"{record.query.query_id}|{record.latency_ms!r}|"
            f"{record.result.fingerprint()}"
        )
    return "\n".join(lines)


class TestProcessExecutorBasics:
    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            ProcessExecutor(0)

    def test_make_executor_backend_dispatch(self):
        with make_executor(1, backend="process") as executor:
            assert isinstance(executor, ProcessExecutor)
            assert executor.workers == 1
        with make_executor(4, backend="serial") as executor:
            assert isinstance(executor, SerialExecutor)
        with pytest.raises(ValueError, match="unknown executor backend"):
            make_executor(2, backend="fiber")

    def test_map_runs_module_level_callables(self):
        with ProcessExecutor(2) as executor:
            results = executor.map(
                [functools.partial(double, i) for i in range(12)]
            )
        assert results == [i * 2 for i in range(12)]

    def test_lambda_rejected(self):
        with ProcessExecutor(2) as executor:
            with pytest.raises(TypeError, match="picklable"):
                executor.map([lambda: 1])

    def test_nested_function_rejected(self):
        def nested():
            return 1

        with ProcessExecutor(2) as executor:
            with pytest.raises(TypeError, match="picklable"):
                executor.map([nested])

    def test_stats_are_worker_measured(self):
        with ProcessExecutor(2) as executor:
            executor.map([functools.partial(double, i) for i in range(5)])
            stats = executor.last_stats
        assert stats is not None
        assert stats.n_tasks == 5
        assert stats.workers == 2
        assert all(ms >= 0.0 for ms in stats.task_ms)

    def test_close_is_idempotent_and_pool_recreated(self):
        executor = ProcessExecutor(2)
        assert executor.map([functools.partial(double, 3)]) == [6]
        executor.close()
        executor.close()
        assert executor.map([functools.partial(double, 4)]) == [8]
        executor.close()

    def test_close_unlinks_published_segments(self, shards):
        from multiprocessing import shared_memory

        executor = ProcessExecutor(2)
        spec = executor.spec_for(shards[0])
        if spec[0] != "shm":  # pragma: no cover - no POSIX shm on host
            executor.close()
            pytest.skip("host fell back to file spill; nothing to unlink")
        name = spec[1]
        shared_memory.SharedMemory(name=name).close()  # attachable while open
        executor.close()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


class TestDistributedProcessFanout:
    @pytest.fixture(scope="class")
    def reference(self, shards):
        searcher = DistributedSearcher(shards, k=10)
        return [
            searcher.search(q).fingerprint() for q in make_queries()
        ]

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_shared_memory_attach_bit_identical(self, shards, reference, workers):
        with make_executor(workers, backend="process") as executor:
            searcher = DistributedSearcher(shards, k=10, executor=executor)
            got = [searcher.search(q).fingerprint() for q in make_queries()]
        assert got == reference

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_mmap_attach_bit_identical(
        self, shards, reference, workers, tmp_path_factory
    ):
        directory = tmp_path_factory.mktemp("stores")
        pack_shards(shards, directory)
        lazy = open_stores(directory)
        with make_executor(workers, backend="process") as executor:
            searcher = DistributedSearcher(lazy, k=10, executor=executor)
            got = [searcher.search(q).fingerprint() for q in make_queries()]
        assert got == reference

    def test_results_seed_parent_memo(self, shards):
        query = make_queries(1)[0]
        with make_executor(2, backend="process") as executor:
            searcher = DistributedSearcher(shards, k=10, executor=executor)
            assert not searcher.searchers[0].is_cached(query)
            first = searcher.search(query)
            assert all(s.is_cached(query) for s in searcher.searchers)
            stats_after_first = executor.last_stats
            second = searcher.search(query)
            # The repeat never re-enters the pool: pure parent-side hits.
            assert executor.last_stats is stats_after_first
        assert second.fingerprint() == first.fingerprint()

    def test_remote_prewarm_seeds_every_searcher(self, shards):
        queries = make_queries(6)
        with make_executor(2, backend="process") as executor:
            searcher = DistributedSearcher(shards, k=10, executor=executor)
            n_tasks = prewarm_searchers(searcher.searchers, queries, executor)
            assert n_tasks == len(shards) * len(
                {q.terms for q in queries}
            )
            assert all(
                s.is_cached(q) for q in queries for s in searcher.searchers
            )
            # Seeded results count as computations, replay as hits.
            assert sum(s.cache_stats.computations for s in searcher.searchers) == n_tasks

    def test_task_descriptor_is_picklable(self, shards):
        import pickle

        with ProcessExecutor(1) as executor:
            task = ShardSearchTask(
                spec=executor.spec_for(shards[0]),
                terms=("t1", "t2"),
                k=10,
                strategy="maxscore",
            )
            blob = pickle.dumps(task)
            assert pickle.loads(blob) == task


class TestRunTraceProcessBackend:
    def make_trace(self, n: int = 24) -> QueryTrace:
        return QueryTrace(
            "process-backend",
            [
                Query(query_id=q.query_id, terms=q.terms, arrival_time=i * 0.01)
                for i, q in enumerate(make_queries(n, seed=23))
            ],
        )

    def test_backend_override_is_bit_identical(self, shards):
        trace = self.make_trace()
        serial = SearchCluster(shards, k=10).run_trace(
            trace, ExhaustivePolicy()
        )
        process = SearchCluster(shards, k=10).run_trace(
            trace, ExhaustivePolicy(), workers=2, backend="process"
        )
        assert run_fingerprint(process) == run_fingerprint(serial)
        assert process.searcher_computations == serial.searcher_computations

    def test_override_restores_previous_executor(self, shards):
        cluster = SearchCluster(shards, k=10)
        before = cluster.executor
        cluster.run_trace(self.make_trace(8), ExhaustivePolicy(), backend="process")
        assert cluster.executor is before
        assert cluster.searcher.executor is before

    def test_store_backed_cluster_decode_counters(self, shards, tmp_path):
        pack_shards(shards, tmp_path)
        lazy = open_stores(tmp_path)
        run = SearchCluster(lazy, k=10).run_trace(
            self.make_trace(12), ExhaustivePolicy()
        )
        assert run.decode_misses > 0  # compressed shards actually decoded
        reference = SearchCluster(shards, k=10).run_trace(
            self.make_trace(12), ExhaustivePolicy()
        )
        assert run_fingerprint(run) == run_fingerprint(reference)
        assert reference.decode_hits == reference.decode_misses == 0

    def test_decode_cache_size_squeezes_without_changing_results(
        self, shards, tmp_path
    ):
        """``decode_cache_size=1`` pins every compressed shard's decode LRU
        at its one-entry floor — evictions happen and are surfaced on the
        run, while the merged results stay bit-identical (the cache is
        purely a wall-clock artifact)."""
        pack_shards(shards, tmp_path)
        lazy = open_stores(tmp_path)
        squeezed = SearchCluster(lazy, k=10).run_trace(
            self.make_trace(12), ExhaustivePolicy(), decode_cache_size=1
        )
        assert squeezed.decode_evictions > 0
        reference = SearchCluster(shards, k=10).run_trace(
            self.make_trace(12), ExhaustivePolicy()
        )
        assert run_fingerprint(squeezed) == run_fingerprint(reference)
        assert reference.decode_evictions == 0

    def test_set_decode_cache_touches_only_compressed_shards(
        self, shards, tmp_path
    ):
        pack_shards(shards, tmp_path)
        lazy = open_stores(tmp_path)
        assert SearchCluster(lazy, k=10).set_decode_cache(4096) == len(shards)
        # In-memory shards have no decode cache and must not grow one.
        assert SearchCluster(shards, k=10).set_decode_cache(4096) == 0
