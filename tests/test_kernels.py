"""Bit-identity of the arena kernels against their scalar references.

Stronger than ``test_strategy_equivalence.py``'s tolerance-based check:
each block-scored kernel must reproduce its cursor-based reference
*exactly* — same hits, same float64 scores (same summation order), same
tie order, and every ``CostStats`` counter equal — on any Hypothesis
corpus.  ``SearchResult.fingerprint()`` captures all of that in one
string.  MaxScore forces the vectorized path with ``min_postings=0``
(the dispatch floor would otherwise route these small corpora to the
scalar and the test would vacuously pass) and sweeps fixed chunk sizes
down to 1, since exactness must be chunk-size independent.
"""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.index import Document, IndexBuilder
from repro.retrieval import (
    KernelStats,
    block_max_wand_search,
    block_max_wand_search_kernel,
    conjunctive_search,
    conjunctive_search_kernel,
    maxscore_search,
    maxscore_search_kernel,
    wand_search,
    wand_search_kernel,
)
from repro.text import WhitespaceAnalyzer


def forced_maxscore_kernel(shard, terms, k):
    return maxscore_search_kernel(shard, terms, k, min_postings=0)


PAIRS = {
    "maxscore": (maxscore_search, forced_maxscore_kernel),
    "wand": (wand_search, wand_search_kernel),
    "block_max_wand": (block_max_wand_search, block_max_wand_search_kernel),
    "conjunctive": (conjunctive_search, conjunctive_search_kernel),
}

VOCAB = [f"w{i}" for i in range(12)]

documents = st.lists(
    st.lists(st.sampled_from(VOCAB), min_size=1, max_size=25),
    min_size=1,
    max_size=40,
)

queries = st.lists(
    st.sampled_from(VOCAB + ["oov_a", "oov_b"]), min_size=0, max_size=5
)

ks = st.integers(min_value=1, max_value=60)


def build_shard(word_lists: list[list[str]]):
    builder = IndexBuilder(0, analyzer=WhitespaceAnalyzer())
    for doc_id, words in enumerate(word_lists):
        builder.add(Document(doc_id=doc_id, text=" ".join(words)))
    return builder.build()


class TestBitIdentity:
    @given(docs=documents, query=queries, k=ks)
    def test_kernels_match_references_exactly(self, docs, query, k):
        shard = build_shard(docs)
        for reference, kernel in PAIRS.values():
            assert (
                kernel(shard, list(query), k).fingerprint()
                == reference(shard, list(query), k).fingerprint()
            )

    @given(
        docs=documents,
        query=queries,
        k=ks,
        chunk=st.sampled_from([1, 2, 3, 7, 33, 64, 1024, 4096]),
    )
    def test_maxscore_exact_for_any_chunk_size(self, docs, query, k, chunk):
        """Batch boundaries are invisible: chunk=1 degenerates to one
        candidate per block and must still reproduce the reference."""
        shard = build_shard(docs)
        reference = maxscore_search(shard, list(query), k)
        kernel = maxscore_search_kernel(
            shard, list(query), k, chunk=chunk, min_postings=0
        )
        assert kernel.fingerprint() == reference.fingerprint()

    @given(docs=documents, query=queries, k=ks)
    def test_maxscore_dispatch_is_transparent(self, docs, query, k):
        """Below the postings floor the kernel dispatches to the scalar;
        with the default floor the result must be identical either way."""
        shard = build_shard(docs)
        assert (
            maxscore_search_kernel(shard, list(query), k).fingerprint()
            == maxscore_search(shard, list(query), k).fingerprint()
        )


class TestExplicitEdgeCases:
    @pytest.fixture(scope="class")
    def shard(self):
        return build_shard(
            [[VOCAB[min(j, i % 12)] for j in range(i % 7 + 1)] for i in range(50)]
        )

    @pytest.mark.parametrize("name", sorted(PAIRS))
    def test_empty_query(self, shard, name):
        _, kernel = PAIRS[name]
        result = kernel(shard, [], 10)
        assert result.hits == []
        assert result.cost.n_terms == 0

    @pytest.mark.parametrize("name", sorted(PAIRS))
    def test_all_terms_oov(self, shard, name):
        reference, kernel = PAIRS[name]
        query = ["nope", "missing"]
        assert (
            kernel(shard, query, 10).fingerprint()
            == reference(shard, query, 10).fingerprint()
        )

    @pytest.mark.parametrize("name", sorted(PAIRS))
    def test_duplicate_terms(self, shard, name):
        reference, kernel = PAIRS[name]
        query = ["w0", "w0", "w1", "w1", "w1"]
        assert (
            kernel(shard, query, 10).fingerprint()
            == reference(shard, query, 10).fingerprint()
        )

    @pytest.mark.parametrize("name", sorted(PAIRS))
    def test_k_larger_than_corpus(self, shard, name):
        reference, kernel = PAIRS[name]
        assert (
            kernel(shard, ["w0", "w1"], 10_000).fingerprint()
            == reference(shard, ["w0", "w1"], 10_000).fingerprint()
        )

    @pytest.mark.parametrize("name", sorted(PAIRS))
    def test_single_doc_shard(self, name):
        reference, kernel = PAIRS[name]
        shard = build_shard([["w0", "w1", "w0"]])
        assert (
            kernel(shard, ["w0", "w1"], 5).fingerprint()
            == reference(shard, ["w0", "w1"], 5).fingerprint()
        )

    @pytest.mark.parametrize("name", sorted(PAIRS))
    def test_k_must_be_positive(self, shard, name):
        _, kernel = PAIRS[name]
        with pytest.raises(ValueError):
            kernel(shard, ["w0"], 0)


class TestKernelStats:
    def test_maxscore_populates_stats(self):
        shard = build_shard(
            [[VOCAB[(i + j) % 12] for j in range(i % 9 + 1)] for i in range(80)]
        )
        stats = KernelStats()
        result = maxscore_search_kernel(
            shard, ["w0", "w1", "w2"], 5, stats=stats, min_postings=0
        )
        assert result.hits
        assert stats.chunks > 0
        assert stats.offers >= len(result.hits)
        assert stats.threshold_restarts >= 0

    def test_stats_accumulate_across_calls(self):
        shard = build_shard([["w0", "w1"], ["w0"], ["w1", "w2"]])
        stats = KernelStats()
        maxscore_search_kernel(shard, ["w0", "w1"], 2, stats=stats, min_postings=0)
        first = stats.chunks
        maxscore_search_kernel(shard, ["w0", "w1"], 2, stats=stats, min_postings=0)
        assert stats.chunks == 2 * first

    def test_sequential_kernels_accept_stats(self):
        shard = build_shard([["w0", "w1"], ["w0"], ["w1"]])
        for kernel in (
            wand_search_kernel,
            block_max_wand_search_kernel,
            conjunctive_search_kernel,
        ):
            stats = KernelStats()
            kernel(shard, ["w0", "w1"], 2, stats=stats)
            assert stats.offers >= 0
