"""Tests for fault injection and graceful degradation."""

import random

import numpy as np
import pytest

from repro.cluster import FaultSchedule, Outage, SearchCluster, Slowdown
from repro.policies import ExhaustivePolicy
from repro.retrieval import Query, QueryTrace


class TestFaultSchedule:
    def test_is_down_inside_interval(self):
        schedule = FaultSchedule.single(2, 100.0, 200.0)
        assert not schedule.is_down(2, 99.9)
        assert schedule.is_down(2, 100.0)
        assert schedule.is_down(2, 150.0)
        assert not schedule.is_down(2, 200.0)  # half-open

    def test_other_shards_unaffected(self):
        schedule = FaultSchedule.single(2, 100.0, 200.0)
        assert not schedule.is_down(1, 150.0)

    def test_multiple_intervals(self):
        schedule = FaultSchedule(
            outages=[Outage(0, 10.0, 20.0), Outage(0, 50.0, 60.0)]
        )
        assert schedule.is_down(0, 15.0)
        assert not schedule.is_down(0, 30.0)
        assert schedule.is_down(0, 55.0)
        assert schedule.downtime_ms(0) == 20.0

    def test_overlap_rejected(self):
        with pytest.raises(ValueError):
            FaultSchedule(outages=[Outage(0, 10.0, 30.0), Outage(0, 20.0, 40.0)])

    def test_validation(self):
        with pytest.raises(ValueError):
            Outage(0, 20.0, 10.0)
        with pytest.raises(ValueError):
            Outage(-1, 0.0, 1.0)


class TestPerReplicaFaults:
    """Replica-addressed outages and slowdowns (the replication axis)."""

    def test_replica_outage_spares_the_siblings(self):
        schedule = FaultSchedule(outages=[Outage(0, 0.0, 100.0, replica_id=1)])
        assert schedule.is_down(0, 50.0, replica_id=1)
        assert not schedule.is_down(0, 50.0, replica_id=0)
        assert not schedule.is_down(0, 50.0)  # default replica 0

    def test_whole_shard_outage_covers_every_replica(self):
        schedule = FaultSchedule.single(0, 0.0, 100.0)
        for rid in range(3):
            assert schedule.is_down(0, 50.0, replica_id=rid)

    def test_slowdown_factor_defaults_to_unity(self):
        assert FaultSchedule().slowdown_factor(0, 10.0) == 1.0

    def test_slowdown_window_and_replica_addressing(self):
        schedule = FaultSchedule.straggler(0, 10.0, 20.0, factor=4.0, replica_id=1)
        assert schedule.slowdown_factor(0, 15.0, replica_id=1) == 4.0
        assert schedule.slowdown_factor(0, 15.0, replica_id=0) == 1.0
        assert schedule.slowdown_factor(0, 25.0, replica_id=1) == 1.0  # half-open
        assert schedule.slowdown_factor(1, 15.0, replica_id=1) == 1.0

    def test_shard_and_replica_slowdowns_compose_multiplicatively(self):
        # A rack-wide throttle on top of a replica-local GC pause.
        schedule = FaultSchedule(
            slowdowns=[
                Slowdown(0, 0.0, 100.0, 2.0),
                Slowdown(0, 0.0, 100.0, 3.0, replica_id=0),
            ]
        )
        assert schedule.slowdown_factor(0, 50.0, replica_id=0) == 6.0
        assert schedule.slowdown_factor(0, 50.0, replica_id=1) == 2.0

    def test_same_replica_overlap_rejected(self):
        with pytest.raises(ValueError):
            FaultSchedule(
                slowdowns=[
                    Slowdown(0, 0.0, 30.0, 2.0, replica_id=1),
                    Slowdown(0, 20.0, 40.0, 3.0, replica_id=1),
                ]
            )

    def test_different_replicas_may_overlap(self):
        schedule = FaultSchedule(
            slowdowns=[
                Slowdown(0, 0.0, 30.0, 2.0, replica_id=0),
                Slowdown(0, 10.0, 40.0, 3.0, replica_id=1),
            ]
        )
        assert schedule.slowdown_factor(0, 15.0, replica_id=0) == 2.0
        assert schedule.slowdown_factor(0, 15.0, replica_id=1) == 3.0

    def test_slowdown_validation(self):
        with pytest.raises(ValueError):
            Slowdown(0, 0.0, 10.0, factor=0.0)
        with pytest.raises(ValueError):
            Slowdown(0, 10.0, 5.0, factor=2.0)
        with pytest.raises(ValueError):
            Slowdown(0, 0.0, 10.0, factor=2.0, replica_id=-1)

    def test_downtime_filters_by_replica(self):
        schedule = FaultSchedule(
            outages=[
                Outage(0, 0.0, 10.0),  # every replica
                Outage(0, 20.0, 25.0, replica_id=1),
            ]
        )
        assert schedule.downtime_ms(0) == 15.0
        assert schedule.downtime_ms(0, replica_id=1) == 15.0
        assert schedule.downtime_ms(0, replica_id=0) == 10.0


class TestRandomTimelines:
    """The random_* constructors are pure functions of their seed."""

    def test_random_flaky_is_seed_deterministic(self):
        a = FaultSchedule.random_flaky(0, 1000.0, random.Random(42))
        b = FaultSchedule.random_flaky(0, 1000.0, random.Random(42))
        assert a.outages == b.outages
        c = FaultSchedule.random_flaky(0, 1000.0, random.Random(43))
        assert a.outages != c.outages

    def test_random_flaky_stays_inside_the_horizon(self):
        schedule = FaultSchedule.random_flaky(
            2, 500.0, random.Random(7), mean_up_ms=40.0, mean_down_ms=20.0
        )
        assert schedule.outages
        for outage in schedule.outages:
            assert outage.shard_id == 2
            assert 0.0 <= outage.start_ms < outage.end_ms <= 500.0

    def test_random_stragglers_is_seed_deterministic(self):
        a = FaultSchedule.random_stragglers(4, 1000.0, random.Random(5), n_replicas=2)
        b = FaultSchedule.random_stragglers(4, 1000.0, random.Random(5), n_replicas=2)
        assert a.slowdowns == b.slowdowns

    def test_random_stragglers_never_overlap_per_replica(self):
        # Valid for any draw: construction pushes same-replica events apart
        # (an overlap would raise in FaultSchedule.__post_init__).
        for seed in range(8):
            schedule = FaultSchedule.random_stragglers(
                2, 300.0, random.Random(seed), n_events=12, n_replicas=2
            )
            assert len(schedule.slowdowns) == 12
            for slowdown in schedule.slowdowns:
                assert 0 <= slowdown.replica_id < 2


@pytest.fixture()
def cluster(shards):
    return SearchCluster(shards, k=5)


def trace(n=20, gap_s=0.05):
    return QueryTrace(
        name="faulty",
        queries=[
            Query(query_id=i, terms=("t1", "t12"), arrival_time=i * gap_s)
            for i in range(n)
        ],
    )


class TestFaultyRuns:
    def test_exhaustive_with_timeout_still_answers(self, cluster):
        faults = FaultSchedule.single(0, 0.0, 1e9)  # shard 0 dead forever
        run = cluster.run_trace(
            trace(), ExhaustivePolicy(), faults=faults, response_timeout_ms=100.0
        )
        assert len(run.records) == 20
        # Every answer misses shard 0 but includes the other three.
        for record in run.records:
            counted = {o.shard_id for o in record.outcomes if o.counted}
            assert 0 not in counted
            assert counted == {1, 2, 3}
            assert record.latency_ms <= 100.0 + 1.0

    def test_budget_policy_survives_without_timeout(self, cluster, unit_testbed):
        # Cottage-style budgets bound the damage with no safety timeout:
        # use the aggregation policy (all-shard budget) as the budget proxy.
        from repro.policies import AggregationPolicy

        faults = FaultSchedule.single(1, 0.0, 1e9)
        run = cluster.run_trace(
            trace(), AggregationPolicy(initial_budget_ms=30.0), faults=faults
        )
        assert len(run.records) == 20
        assert all(r.latency_ms < 120.0 for r in run.records)

    def test_outage_window_only(self, cluster):
        # Shard 0 down for the first half of the trace only.
        faults = FaultSchedule.single(0, 0.0, 500.0)
        run = cluster.run_trace(
            trace(), ExhaustivePolicy(), faults=faults, response_timeout_ms=200.0
        )
        early = [r for r in run.records if r.arrival_ms < 400.0]
        late = [r for r in run.records if r.arrival_ms > 600.0]
        assert early and late
        assert all(
            0 not in {o.shard_id for o in r.outcomes if o.counted} for r in early
        )
        assert all(0 in {o.shard_id for o in r.outcomes if o.counted} for r in late)

    def test_dead_isn_consumes_no_energy(self, cluster):
        faults = FaultSchedule.single(0, 0.0, 1e9)
        run = cluster.run_trace(
            trace(), ExhaustivePolicy(), faults=faults, response_timeout_ms=100.0
        )
        assert run.power.per_core_utilization[0] == 0.0
        assert run.power.per_core_utilization[1] > 0.0

    def test_quality_degrades_gracefully(self, cluster, shards):
        from repro.metrics import GroundTruth

        faults = FaultSchedule.single(0, 0.0, 1e9)
        run = cluster.run_trace(
            trace(), ExhaustivePolicy(), faults=faults, response_timeout_ms=100.0
        )
        truth = GroundTruth.build(cluster.searcher, [trace()[0]], k=5)
        precisions = [
            truth.precision(r.query, r.result.doc_ids()) for r in run.records
        ]
        # Partial answers: below perfect, far above empty.
        assert 0.0 < np.mean(precisions) < 1.0

    def test_timeout_validation(self, cluster):
        with pytest.raises(ValueError):
            cluster.run_trace(trace(), ExhaustivePolicy(), response_timeout_ms=0.0)


class TestTimeoutFaultsCacheCombined:
    """Response timeout + fail-silent faults + result cache, together.

    The sequencing under test: a query misses the cache and is dispatched;
    a duplicate arrives while the first is still in flight (the result is
    not cached until finalize, so it also misses and dispatches); the
    safety timeout then finalizes both against the dead shard, the merged
    result is cached, and a third occurrence answers from the cache.
    """

    def test_timeout_fires_while_cached_query_in_flight(self, cluster):
        from repro.cluster import ResultCache

        timeout_ms = 50.0
        faults = FaultSchedule.single(0, 0.0, 1e9)  # shard 0 never answers
        cache = ResultCache(capacity=8)
        repeats = QueryTrace(
            name="repeats",
            queries=[
                # Same terms three times: t=0 (miss, dispatch), t=20ms
                # (in flight -> miss, dispatch), t=200ms (cache hit).
                Query(query_id=0, terms=("t1", "t12"), arrival_time=0.0),
                Query(query_id=1, terms=("t1", "t12"), arrival_time=0.020),
                Query(query_id=2, terms=("t1", "t12"), arrival_time=0.200),
            ],
        )
        run = cluster.run_trace(
            repeats,
            ExhaustivePolicy(),
            faults=faults,
            response_timeout_ms=timeout_ms,
            cache=cache,
        )
        first, second, third = run.records
        # Both in-flight queries missed the cache and paid the timeout.
        assert not first.from_cache and not second.from_cache
        assert first.latency_ms >= timeout_ms
        assert second.latency_ms >= timeout_ms
        # The third arrived after the first finalized and hit the cache.
        assert third.from_cache
        assert third.latency_ms == cache.lookup_ms
        assert third.outcomes == []  # zero ISN work on a hit
        assert run.cache_stats.hits == 1
        assert run.cache_stats.misses == 2
        # Every dispatched answer excludes the dead shard but is non-empty.
        for record in (first, second):
            counted = {o.shard_id for o in record.outcomes if o.counted}
            assert 0 not in counted
            assert counted == {1, 2, 3}
        assert third.result.hits == first.result.hits
