"""Tests for fault injection and graceful degradation."""

import numpy as np
import pytest

from repro.cluster import FaultSchedule, Outage, SearchCluster
from repro.policies import ExhaustivePolicy
from repro.retrieval import Query, QueryTrace


class TestFaultSchedule:
    def test_is_down_inside_interval(self):
        schedule = FaultSchedule.single(2, 100.0, 200.0)
        assert not schedule.is_down(2, 99.9)
        assert schedule.is_down(2, 100.0)
        assert schedule.is_down(2, 150.0)
        assert not schedule.is_down(2, 200.0)  # half-open

    def test_other_shards_unaffected(self):
        schedule = FaultSchedule.single(2, 100.0, 200.0)
        assert not schedule.is_down(1, 150.0)

    def test_multiple_intervals(self):
        schedule = FaultSchedule(
            outages=[Outage(0, 10.0, 20.0), Outage(0, 50.0, 60.0)]
        )
        assert schedule.is_down(0, 15.0)
        assert not schedule.is_down(0, 30.0)
        assert schedule.is_down(0, 55.0)
        assert schedule.downtime_ms(0) == 20.0

    def test_overlap_rejected(self):
        with pytest.raises(ValueError):
            FaultSchedule(outages=[Outage(0, 10.0, 30.0), Outage(0, 20.0, 40.0)])

    def test_validation(self):
        with pytest.raises(ValueError):
            Outage(0, 20.0, 10.0)
        with pytest.raises(ValueError):
            Outage(-1, 0.0, 1.0)


@pytest.fixture()
def cluster(shards):
    return SearchCluster(shards, k=5)


def trace(n=20, gap_s=0.05):
    return QueryTrace(
        name="faulty",
        queries=[
            Query(query_id=i, terms=("t1", "t12"), arrival_time=i * gap_s)
            for i in range(n)
        ],
    )


class TestFaultyRuns:
    def test_exhaustive_with_timeout_still_answers(self, cluster):
        faults = FaultSchedule.single(0, 0.0, 1e9)  # shard 0 dead forever
        run = cluster.run_trace(
            trace(), ExhaustivePolicy(), faults=faults, response_timeout_ms=100.0
        )
        assert len(run.records) == 20
        # Every answer misses shard 0 but includes the other three.
        for record in run.records:
            counted = {o.shard_id for o in record.outcomes if o.counted}
            assert 0 not in counted
            assert counted == {1, 2, 3}
            assert record.latency_ms <= 100.0 + 1.0

    def test_budget_policy_survives_without_timeout(self, cluster, unit_testbed):
        # Cottage-style budgets bound the damage with no safety timeout:
        # use the aggregation policy (all-shard budget) as the budget proxy.
        from repro.policies import AggregationPolicy

        faults = FaultSchedule.single(1, 0.0, 1e9)
        run = cluster.run_trace(
            trace(), AggregationPolicy(initial_budget_ms=30.0), faults=faults
        )
        assert len(run.records) == 20
        assert all(r.latency_ms < 120.0 for r in run.records)

    def test_outage_window_only(self, cluster):
        # Shard 0 down for the first half of the trace only.
        faults = FaultSchedule.single(0, 0.0, 500.0)
        run = cluster.run_trace(
            trace(), ExhaustivePolicy(), faults=faults, response_timeout_ms=200.0
        )
        early = [r for r in run.records if r.arrival_ms < 400.0]
        late = [r for r in run.records if r.arrival_ms > 600.0]
        assert early and late
        assert all(
            0 not in {o.shard_id for o in r.outcomes if o.counted} for r in early
        )
        assert all(0 in {o.shard_id for o in r.outcomes if o.counted} for r in late)

    def test_dead_isn_consumes_no_energy(self, cluster):
        faults = FaultSchedule.single(0, 0.0, 1e9)
        run = cluster.run_trace(
            trace(), ExhaustivePolicy(), faults=faults, response_timeout_ms=100.0
        )
        assert run.power.per_core_utilization[0] == 0.0
        assert run.power.per_core_utilization[1] > 0.0

    def test_quality_degrades_gracefully(self, cluster, shards):
        from repro.metrics import GroundTruth

        faults = FaultSchedule.single(0, 0.0, 1e9)
        run = cluster.run_trace(
            trace(), ExhaustivePolicy(), faults=faults, response_timeout_ms=100.0
        )
        truth = GroundTruth.build(cluster.searcher, [trace()[0]], k=5)
        precisions = [
            truth.precision(r.query, r.result.doc_ids()) for r in run.records
        ]
        # Partial answers: below perfect, far above empty.
        assert 0.0 < np.mean(precisions) < 1.0

    def test_timeout_validation(self, cluster):
        with pytest.raises(ValueError):
            cluster.run_trace(trace(), ExhaustivePolicy(), response_timeout_ms=0.0)


class TestTimeoutFaultsCacheCombined:
    """Response timeout + fail-silent faults + result cache, together.

    The sequencing under test: a query misses the cache and is dispatched;
    a duplicate arrives while the first is still in flight (the result is
    not cached until finalize, so it also misses and dispatches); the
    safety timeout then finalizes both against the dead shard, the merged
    result is cached, and a third occurrence answers from the cache.
    """

    def test_timeout_fires_while_cached_query_in_flight(self, cluster):
        from repro.cluster import ResultCache

        timeout_ms = 50.0
        faults = FaultSchedule.single(0, 0.0, 1e9)  # shard 0 never answers
        cache = ResultCache(capacity=8)
        repeats = QueryTrace(
            name="repeats",
            queries=[
                # Same terms three times: t=0 (miss, dispatch), t=20ms
                # (in flight -> miss, dispatch), t=200ms (cache hit).
                Query(query_id=0, terms=("t1", "t12"), arrival_time=0.0),
                Query(query_id=1, terms=("t1", "t12"), arrival_time=0.020),
                Query(query_id=2, terms=("t1", "t12"), arrival_time=0.200),
            ],
        )
        run = cluster.run_trace(
            repeats,
            ExhaustivePolicy(),
            faults=faults,
            response_timeout_ms=timeout_ms,
            cache=cache,
        )
        first, second, third = run.records
        # Both in-flight queries missed the cache and paid the timeout.
        assert not first.from_cache and not second.from_cache
        assert first.latency_ms >= timeout_ms
        assert second.latency_ms >= timeout_ms
        # The third arrived after the first finalized and hit the cache.
        assert third.from_cache
        assert third.latency_ms == cache.lookup_ms
        assert third.outcomes == []  # zero ISN work on a hit
        assert run.cache_stats.hits == 1
        assert run.cache_stats.misses == 2
        # Every dispatched answer excludes the dead shard but is non-empty.
        for record in (first, second):
            counted = {o.shard_id for o in record.outcomes if o.counted}
            assert 0 not in counted
            assert counted == {1, 2, 3}
        assert third.result.hits == first.result.hits
