"""The faults x replication x budget scenario matrix.

Three regression families:

* scenario timelines are pure functions of the seed (DET-RNG: equal
  seeds replay equal fault schedules, different seeds diverge);
* the ``response_timeout_ms`` safety net is what keeps unbudgeted
  policies answering under a total outage — without it the affected
  queries never finalize;
* quality-loss accounting closes against dropped-shard counts: a
  fault-free cell loses nothing, an outage cell loses exactly what the
  dead shards contributed.
"""

import pytest

from repro.cluster import (
    CellResult,
    FaultSchedule,
    MatrixCase,
    ScenarioContext,
    SCENARIOS,
    SearchCluster,
    default_matrix,
    run_matrix,
    scenario_schedule,
)
from repro.metrics import GroundTruth
from repro.policies import AggregationPolicy, ExhaustivePolicy
from repro.retrieval import Query, QueryTrace


def small_trace(n=18, gap_s=0.01):
    terms_pool = [("t1",), ("t2", "t12"), ("t5",), ("t11", "t3"), ("t21",)]
    return QueryTrace(
        name="matrix",
        queries=[
            Query(
                query_id=i,
                terms=terms_pool[i % len(terms_pool)],
                arrival_time=i * gap_s,
            )
            for i in range(n)
        ],
    )


def make_policy(name):
    """run_matrix policy factory: one unbudgeted, one budgeted policy."""
    if name == "exhaustive":
        return ExhaustivePolicy()
    if name == "budgeted":
        return AggregationPolicy(initial_budget_ms=30.0)
    raise ValueError(name)


def ctx(seed=0, n_shards=4, n_replicas=2, horizon_ms=180.0):
    return ScenarioContext(
        n_shards=n_shards,
        n_replicas=n_replicas,
        horizon_ms=horizon_ms,
        seed=seed,
    )


@pytest.mark.faults
class TestScenarioDeterminism:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_same_seed_same_timeline(self, name):
        assert scenario_schedule(name, ctx(seed=7)) == scenario_schedule(
            name, ctx(seed=7)
        )

    @pytest.mark.parametrize("name", ["flaky_shard", "burst_outage"])
    def test_different_seeds_diverge(self, name):
        # The randomized scenarios actually consume their seed.
        timelines = {
            repr(scenario_schedule(name, ctx(seed=s))) for s in range(4)
        }
        assert len(timelines) > 1

    @pytest.mark.parametrize("name", ["none", "outage", "slow_replica", "correlated"])
    def test_deterministic_scenarios_ignore_the_seed(self, name):
        assert scenario_schedule(name, ctx(seed=1)) == scenario_schedule(
            name, ctx(seed=2)
        )

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            scenario_schedule("meteor_strike", ctx())

    def test_slow_replica_spares_the_backup(self):
        schedule = scenario_schedule("slow_replica", ctx())
        assert schedule.slowdown_factor(0, 10.0, replica_id=0) > 1.0
        assert schedule.slowdown_factor(0, 10.0, replica_id=1) == 1.0

    def test_correlated_kills_at_least_two_shards(self):
        schedule = scenario_schedule("correlated", ctx())
        mid = ctx().horizon_ms / 2.0
        down = [sid for sid in range(4) if schedule.is_down(sid, mid)]
        assert len(down) >= 2
        # ...on every replica: replication cannot route around a rack.
        assert all(schedule.is_down(sid, mid, replica_id=1) for sid in down)


class TestMatrixCases:
    def test_default_matrix_shape(self):
        cases = default_matrix(
            policies=("exhaustive", "budgeted"), scenarios=("outage",)
        )
        # Per scenario x policy: a single-replica primary baseline plus a
        # hedged and a tied cell.
        assert len(cases) == 2 * 3
        assert {c.mode for c in cases} == {"primary", "hedged", "tied"}
        for case in cases:
            if case.mode == "primary":
                assert case.n_replicas == 1
            else:
                assert case.n_replicas == 2

    def test_case_validation(self):
        with pytest.raises(ValueError):
            MatrixCase("outage", "exhaustive", mode="hedged", n_replicas=1)
        with pytest.raises(ValueError):
            MatrixCase("no_such", "exhaustive")
        with pytest.raises(ValueError):
            MatrixCase("outage", "exhaustive", mode="speculative", n_replicas=2)
        with pytest.raises(ValueError):
            MatrixCase("outage", "exhaustive", selector="round_robin")

    def test_label_is_fully_qualified(self):
        case = MatrixCase("outage", "budgeted", "tied", 2, "seeded")
        assert case.label == "outage/budgeted/tied/r2/seeded"


@pytest.fixture()
def matrix_env(shards):
    cluster = SearchCluster(shards, k=5)
    trace = small_trace()
    truth = GroundTruth.build(cluster.searcher, list(trace), k=5)
    return cluster, trace, truth


@pytest.mark.faults
class TestRunMatrix:
    def test_same_seed_identical_cells(self, matrix_env):
        cluster, trace, truth = matrix_env
        cases = [
            MatrixCase("outage", "exhaustive"),
            MatrixCase("flaky_shard", "budgeted", "hedged", 2),
            MatrixCase("burst_outage", "budgeted", "tied", 2),
        ]
        first = run_matrix(cluster, make_policy, trace, truth, cases, seed=3)
        second = run_matrix(cluster, make_policy, trace, truth, cases, seed=3)
        assert first == second  # CellResult is frozen: field-exact equality
        assert all(isinstance(cell, CellResult) for cell in first)

    def test_timeout_safety_net_required_for_unbudgeted_policies(self, shards):
        """Under the outage scenario an unbudgeted policy hangs on every
        query that touches the dead shard; the safety timeout is what
        turns those into (late, partial) answers."""
        trace = small_trace()
        horizon = trace.duration * 1000.0
        faults = scenario_schedule(
            "outage", ctx(horizon_ms=horizon, n_replicas=1)
        )
        stuck = SearchCluster(shards, k=5).run_trace(
            trace, ExhaustivePolicy(), faults=faults
        )
        assert len(stuck.records) < len(trace)  # mid-trace queries hang

        saved = SearchCluster(shards, k=5).run_trace(
            trace, ExhaustivePolicy(), faults=faults, response_timeout_ms=80.0
        )
        assert len(saved.records) == len(trace)
        rescued = [r for r in saved.records if r.n_dropped_shards > 0]
        assert rescued  # the outage window actually bit
        for record in rescued:
            assert record.latency_ms >= 80.0

    def test_budgeted_policy_needs_no_safety_net(self, shards):
        trace = small_trace()
        horizon = trace.duration * 1000.0
        faults = scenario_schedule(
            "outage", ctx(horizon_ms=horizon, n_replicas=1)
        )
        run = SearchCluster(shards, k=5).run_trace(
            trace, AggregationPolicy(initial_budget_ms=30.0), faults=faults
        )
        assert len(run.records) == len(trace)  # budgets bound the damage

    def test_quality_loss_matches_dropped_shard_accounting(self, matrix_env):
        cluster, trace, truth = matrix_env
        cases = [
            MatrixCase("none", "exhaustive"),
            MatrixCase("outage", "exhaustive"),
        ]
        clean, outage = run_matrix(
            cluster, make_policy, trace, truth, cases, seed=0
        )
        # Fault-free cell: nothing dropped, nothing lost (it IS the
        # reference run, replayed).
        assert clean.avg_dropped_shards == 0.0
        assert clean.quality_loss == pytest.approx(0.0, abs=1e-12)
        # Outage cell: shards were dropped and quality moved with them.
        assert outage.avg_dropped_shards > 0.0
        assert outage.quality_loss > 0.0
        assert outage.avg_precision + outage.quality_loss == pytest.approx(
            clean.avg_precision
        )
