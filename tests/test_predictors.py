"""Unit tests for the quality/latency predictors and the Taily estimator."""

import numpy as np
import pytest

from repro.index.term_stats import TermStatsIndex
from repro.predictors import (
    LatencyBinning,
    LatencyPredictor,
    QualityPredictor,
    TailyQualityEstimator,
)


def toy_quality_data(n=300, k=5, seed=0):
    """Features whose first column determines the class."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 10))
    y = np.clip((x[:, 0] * 2 + 2).astype(int), 0, k)
    return x, y


class TestQualityPredictor:
    def test_learns_toy_problem(self):
        x, y = toy_quality_data()
        model = QualityPredictor(k=5, hidden_layers=2, hidden_units=32)
        model.fit(x, y, iterations=1200)
        assert model.accuracy(x, y) > 0.65

    def test_labels_clipped_to_k(self):
        x, _ = toy_quality_data(50)
        model = QualityPredictor(k=3, hidden_layers=1, hidden_units=8)
        model.fit(x, np.full(50, 99), iterations=10)
        assert model.predict_counts(x).max() <= 3

    def test_predict_before_fit_raises(self):
        model = QualityPredictor(k=5)
        with pytest.raises(RuntimeError):
            model.predict_counts(np.zeros((1, 10)))

    def test_predict_with_zero_prob(self):
        x, y = toy_quality_data()
        model = QualityPredictor(k=5, hidden_layers=1, hidden_units=8)
        model.fit(x, y, iterations=100)
        count, p_zero = model.predict_with_zero_prob(x[0])
        assert 0 <= count <= 5
        assert 0.0 <= p_zero <= 1.0

    def test_inference_time_measured(self):
        x, y = toy_quality_data(50)
        model = QualityPredictor(k=5, hidden_layers=1, hidden_units=8)
        model.fit(x, y, iterations=10)
        assert model.inference_time_us(x[0], repeats=5) > 0

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            QualityPredictor(k=0)


class TestLatencyBinning:
    def test_log_bins_cover_range(self):
        binning = LatencyBinning.logarithmic(lo_ms=1.0, hi_ms=100.0, n_bins=10)
        assert binning.n_bins == 10
        assert binning.bin_of(0.1) == 0
        assert binning.bin_of(1000.0) == 9

    def test_bin_of_monotone(self):
        binning = LatencyBinning.logarithmic()
        values = [0.1, 1.0, 5.0, 20.0, 100.0, 500.0]
        bins = [binning.bin_of(v) for v in values]
        assert bins == sorted(bins)

    def test_center_within_bin(self):
        binning = LatencyBinning.logarithmic(lo_ms=1.0, hi_ms=100.0, n_bins=10)
        for b in range(1, binning.n_bins - 1):
            center = binning.center_ms(b)
            assert binning.bin_of(center) == b

    def test_roundtrip_error_bounded(self):
        binning = LatencyBinning.logarithmic()
        for value in (1.0, 3.7, 12.0, 55.0, 150.0):
            center = binning.center_ms(binning.bin_of(value))
            assert abs(np.log(center / value)) < np.log(1.4)

    def test_validation(self):
        with pytest.raises(ValueError):
            LatencyBinning.logarithmic(lo_ms=5.0, hi_ms=1.0)
        with pytest.raises(ValueError):
            LatencyBinning.logarithmic(n_bins=1)


class TestLatencyPredictor:
    def _toy(self, n=400, seed=0):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(n, 15))
        service = np.exp(x[:, 0] * 0.8 + 2.0)  # 1-50 ms, driven by feature 0
        return x, service

    def test_learns_service_time(self):
        x, service = self._toy()
        model = LatencyPredictor(hidden_layers=2, hidden_units=32)
        model.fit(x, service, iterations=1200)
        assert model.accuracy(x, service) > 0.6

    def test_predict_service_positive(self):
        x, service = self._toy(100)
        model = LatencyPredictor(hidden_layers=1, hidden_units=8)
        model.fit(x, service, iterations=50)
        assert (model.predict_service_ms(x) > 0).all()

    def test_accuracy_tolerance_widens(self):
        x, service = self._toy(200)
        model = LatencyPredictor(hidden_layers=1, hidden_units=8)
        model.fit(x, service, iterations=100)
        strict = model.accuracy(x, service, tolerance_bins=0)
        loose = model.accuracy(x, service, tolerance_bins=3)
        assert loose >= strict

    def test_untrained_raises(self):
        with pytest.raises(RuntimeError):
            LatencyPredictor().predict_bins(np.zeros((1, 15)))


class TestTailyEstimator:
    @pytest.fixture()
    def estimator(self, shards):
        return TailyQualityEstimator([TermStatsIndex(s, k=10) for s in shards])

    def test_estimates_nonnegative_and_bounded(self, estimator, shards):
        term = shards[0].terms()[0]
        estimate = estimator.estimate([term])
        assert len(estimate.expected_docs) == len(shards)
        for sid, expected in enumerate(estimate.expected_docs):
            assert 0.0 <= expected <= shards[sid].n_docs

    def test_unknown_terms_give_zero(self, estimator):
        estimate = estimator.estimate(["zzz-missing"])
        assert all(e == 0.0 for e in estimate.expected_docs)
        assert estimate.selected(0.5) == []

    def test_total_near_nc(self, estimator, shards):
        # The threshold is solved so total expected docs ≈ n_c (when there
        # are enough candidates).
        term = max(shards[0].terms(), key=lambda t: shards[0].doc_freq(t))
        estimate = estimator.estimate([term])
        total = sum(estimate.expected_docs)
        candidates = sum(s.doc_freq(term) for s in shards)
        if candidates > estimator.n_c:
            assert total == pytest.approx(estimator.n_c, rel=0.1)

    def test_quality_counts_sum_bounded(self, estimator, shards):
        term = shards[0].terms()[0]
        counts = estimator.quality_counts([term], k=10)
        assert sum(counts) <= 10 + len(shards)  # rounding slack

    def test_estimate_cached(self, estimator, shards):
        term = shards[0].terms()[0]
        assert estimator.estimate([term]) is estimator.estimate([term])

    def test_shard_fit_none_when_absent(self, estimator):
        assert estimator.shard_fit(0, ["zzz-missing"]) is None

    def test_empty_indexes_rejected(self):
        with pytest.raises(ValueError):
            TailyQualityEstimator([])
