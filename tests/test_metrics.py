"""Unit tests for evaluation metrics."""

import pytest

from repro.metrics import (
    GroundTruth,
    comparison_table,
    latency_histogram,
    mean,
    percentile,
    precision_at_k,
    relative_improvement,
    timeline,
)
from repro.retrieval import DistributedSearcher, Query


class TestPrecisionAtK:
    def test_full_overlap(self):
        assert precision_at_k([1, 2, 3], [1, 2, 3], 3) == 1.0

    def test_partial_overlap(self):
        assert precision_at_k([1, 9, 8], [1, 2, 3], 3) == pytest.approx(1 / 3)

    def test_order_within_topk_irrelevant(self):
        assert precision_at_k([3, 1, 2], [1, 2, 3], 3) == 1.0

    def test_truth_shorter_than_k_normalizes(self):
        assert precision_at_k([1, 2], [1, 2], 10) == 1.0

    def test_empty_truth_is_perfect(self):
        assert precision_at_k([], [], 10) == 1.0

    def test_empty_returned(self):
        assert precision_at_k([], [1, 2, 3], 3) == 0.0

    def test_k_validation(self):
        with pytest.raises(ValueError):
            precision_at_k([1], [1], 0)


class TestGroundTruth:
    def test_build_and_precision(self, shards):
        searcher = DistributedSearcher(shards, k=5)
        query = Query(query_id=0, terms=("t1", "t12"))
        truth = GroundTruth.build(searcher, [query], k=5)
        entry = truth.get(query)
        assert len(entry.top_k) <= 5
        assert sum(entry.contributions_k.values()) == len(entry.top_k)
        assert truth.precision(query, entry.top_k) == 1.0

    def test_half_k_contributions_subset(self, shards):
        searcher = DistributedSearcher(shards, k=5)
        query = Query(query_id=0, terms=("t1",))
        truth = GroundTruth.build(searcher, [query], k=5)
        entry = truth.get(query)
        assert sum(entry.contributions_half_k.values()) <= sum(
            entry.contributions_k.values()
        )

    def test_shared_entry_for_equal_terms(self, shards):
        searcher = DistributedSearcher(shards, k=5)
        truth = GroundTruth(k=5)
        a = truth.ensure(searcher, Query(query_id=0, terms=("t1",)))
        b = truth.ensure(searcher, Query(query_id=9, terms=("t1",)))
        assert a is b
        assert len(truth) == 1

    def test_missing_query_raises(self, shards):
        truth = GroundTruth(k=5)
        with pytest.raises(KeyError):
            truth.get(Query(query_id=0, terms=("t1",)))


class TestLatencyStats:
    def test_percentile_and_mean(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert mean(values) == 2.5
        assert percentile(values, 50) == 2.5
        assert percentile(values, 100) == 4.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean([])
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_histogram_bins(self):
        bins = latency_histogram([1.0, 6.0, 7.0, 12.0], bin_width_ms=5.0)
        assert [count for _, _, count in bins] == [1, 2, 1]

    def test_histogram_empty(self):
        assert latency_histogram([]) == []

    def test_timeline_buckets(self):
        series = timeline([0.5, 1.5, 11.0], [10.0, 20.0, 30.0], bucket_s=10.0)
        assert series == [(0.0, 15.0), (10.0, 30.0)]

    def test_timeline_misaligned_inputs(self):
        with pytest.raises(ValueError):
            timeline([1.0], [1.0, 2.0])


class TestComparisonTable:
    def test_renders_all_policies(self, unit_testbed):
        trace = unit_testbed.wikipedia_trace
        summaries = [
            unit_testbed.summarize(trace, "exhaustive"),
            unit_testbed.summarize(trace, "cottage"),
        ]
        table = comparison_table(summaries, title="demo")
        assert "demo" in table
        assert "exhaustive" in table and "cottage" in table

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            comparison_table([])


class TestRelativeImprovement:
    def test_basic(self):
        assert relative_improvement(10.0, 5.0) == 0.5
        assert relative_improvement(10.0, 12.0) == pytest.approx(-0.2)

    def test_zero_baseline_rejected(self):
        with pytest.raises(ValueError):
            relative_improvement(0.0, 1.0)
