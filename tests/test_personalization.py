"""Tests for the personalized-search extension."""

import numpy as np
import pytest

from repro.index.term_stats import TermStatsIndex
from repro.personalization import (
    PERSONALIZED_QUALITY_FEATURE_NAMES,
    PersonalizedSearcher,
    UserProfile,
    personalized_quality_features,
    personalized_search,
)
from repro.predictors import QualityPredictor
from repro.retrieval import Query, exhaustive_search


class TestUserProfile:
    def test_default_weight_is_neutral(self):
        profile = UserProfile.neutral()
        assert profile.weight("anything") == 1.0

    def test_weights_for(self):
        profile = UserProfile(user_id="u", term_weights={"a": 2.0})
        assert profile.weights_for(("a", "b")) == [2.0, 1.0]

    def test_from_interests_mapping(self):
        profile = UserProfile.from_interests("u", {"sport": 1.0, "news": 0.5})
        assert profile.weight("sport") == 2.0
        assert profile.weight("news") == 1.5

    def test_validation(self):
        with pytest.raises(ValueError):
            UserProfile(user_id="u", term_weights={"a": -0.1})
        with pytest.raises(ValueError):
            UserProfile.from_interests("u", {"a": 2.0})


class TestPersonalizedSearch:
    def test_neutral_profile_matches_base(self, shards):
        profile = UserProfile.neutral()
        for terms in (["t1"], ["t1", "t12"]):
            base = exhaustive_search(shards[0], terms, 10)
            personal = personalized_search(shards[0], terms, 10, profile)
            assert personal.hits == base.hits

    def test_boosting_reranks(self, shards):
        shard = shards[0]
        terms = sorted(shard.terms(), key=lambda t: shard.doc_freq(t), reverse=True)[:2]
        base = personalized_search(shard, terms, 10, UserProfile.neutral())
        boosted = personalized_search(
            shard, terms, 10,
            UserProfile(user_id="u", term_weights={terms[1]: 5.0}),
        )
        assert base.hits != boosted.hits
        # The boosted ranking favours documents containing the boosted term.
        boosted_docs = set(shard.postings(terms[1]).doc_ids.tolist())
        top_base = sum(1 for d, _ in base.hits[:5] if d in boosted_docs)
        top_boosted = sum(1 for d, _ in boosted.hits[:5] if d in boosted_docs)
        assert top_boosted >= top_base

    def test_zero_weight_mutes_term(self, shards):
        shard = shards[0]
        terms = sorted(shard.terms(), key=lambda t: shard.doc_freq(t), reverse=True)[:2]
        muted = personalized_search(
            shard, terms, 10,
            UserProfile(user_id="u", term_weights={terms[0]: 0.0}),
        )
        solo = exhaustive_search(shard, [terms[1]], 10)
        # With term 0 muted, the non-zero-scored ranking is term 1's alone.
        muted_nonzero = [(d, s) for d, s in muted.hits if s > 1e-12]
        assert [d for d, _ in muted_nonzero] == [d for d, _ in solo.hits][: len(muted_nonzero)]

    def test_weight_scales_scores_linearly(self, shards):
        shard = shards[0]
        term = shards[0].terms()[0]
        base = personalized_search(shard, [term], 5, UserProfile.neutral())
        doubled = personalized_search(
            shard, [term], 5, UserProfile(user_id="u", term_weights={term: 2.0})
        )
        for (da, sa), (db, sb) in zip(base.hits, doubled.hits):
            assert da == db
            assert sb == pytest.approx(2 * sa)

    def test_k_validation(self, shards):
        with pytest.raises(ValueError):
            personalized_search(shards[0], ["t1"], 0, UserProfile.neutral())


class TestPersonalizedSearcher:
    def test_distributed_merge(self, shards):
        searcher = PersonalizedSearcher(shards, k=10)
        query = Query(query_id=0, terms=("t1", "t12"))
        result = searcher.search(query, UserProfile.neutral())
        assert len(result.hits) <= 10

    def test_contributions_sum_to_topk(self, shards):
        searcher = PersonalizedSearcher(shards, k=10)
        query = Query(query_id=0, terms=("t1", "t12"))
        contributions = searcher.shard_contributions(query, UserProfile.neutral())
        merged = searcher.search(query, UserProfile.neutral())
        assert sum(contributions.values()) == len(merged.hits)

    def test_profile_shifts_contributions(self, shards):
        searcher = PersonalizedSearcher(shards, k=10)
        shard = shards[0]
        terms = tuple(
            sorted(shard.terms(), key=lambda t: shard.doc_freq(t), reverse=True)[:2]
        )
        query = Query(query_id=0, terms=terms)
        neutral = searcher.shard_contributions(query, UserProfile.neutral())
        boosted = searcher.shard_contributions(
            query, UserProfile(user_id="u", term_weights={terms[1]: 8.0})
        )
        assert neutral != boosted

    def test_empty_shards_rejected(self):
        with pytest.raises(ValueError):
            PersonalizedSearcher([])


class TestPersonalizedFeatures:
    def test_extends_table1(self, shards):
        stats = TermStatsIndex(shards[0], k=10)
        profile = UserProfile(user_id="u", term_weights={"t1": 2.0})
        vector = personalized_quality_features(("t1", "t2"), stats, profile)
        assert vector.shape == (len(PERSONALIZED_QUALITY_FEATURE_NAMES),)
        assert vector[-3] == 2.0  # max weight
        assert vector[-2] == pytest.approx(1.5)  # mean
        assert vector[-1] == 1.0  # min

    def test_predictor_accepts_extended_width(self, shards):
        stats = TermStatsIndex(shards[0], k=10)
        profile = UserProfile.neutral()
        rng = np.random.default_rng(0)
        rows = np.stack(
            [
                personalized_quality_features(("t1", "t2"), stats, profile)
                + rng.normal(0, 0.01, 13)
                for _ in range(40)
            ]
        )
        labels = rng.integers(0, 3, size=40)
        model = QualityPredictor(
            k=10, hidden_layers=1, hidden_units=8,
            n_features=len(PERSONALIZED_QUALITY_FEATURE_NAMES),
        )
        model.fit(rows, labels, iterations=5)
        assert model.predict_counts(rows).shape == (40,)
