"""Tests for the oracle policy."""

import pytest

from repro.metrics import summarize_run
from repro.policies import OraclePolicy


@pytest.fixture(scope="module")
def oracle_summary(unit_testbed):
    trace = unit_testbed.wikipedia_trace
    truth = unit_testbed.truth_for(trace)
    oracle = OraclePolicy(unit_testbed.cluster, truth)
    run = unit_testbed.cluster.run_trace(trace, oracle)
    return summarize_run(run, truth, trace.name), truth


class TestOracle:
    def test_perfect_quality(self, oracle_summary):
        summary, _ = oracle_summary
        assert summary.avg_precision > 0.99

    def test_dominates_cottage_latency(self, unit_testbed, oracle_summary):
        summary, truth = oracle_summary
        cottage = summarize_run(
            unit_testbed.run(unit_testbed.wikipedia_trace, "cottage"), truth
        )
        assert summary.avg_latency_ms <= cottage.avg_latency_ms * 1.05

    def test_selects_exactly_contributors(self, unit_testbed):
        truth = unit_testbed.truth_for(unit_testbed.wikipedia_trace)
        oracle = OraclePolicy(unit_testbed.cluster, truth)
        view_template = None
        from repro.cluster.types import ClusterView

        n = unit_testbed.cluster.n_shards
        view_template = ClusterView(
            now_ms=0.0, n_shards=n,
            default_freq_ghz=unit_testbed.cluster.freq_scale.default_ghz,
            max_freq_ghz=unit_testbed.cluster.freq_scale.max_ghz,
            queued_predicted_ms=tuple(0.0 for _ in range(n)),
        )
        for query in list({q.terms: q for q in unit_testbed.wikipedia_trace}.values())[:15]:
            decision = oracle.decide(query, view_template)
            contributors = {
                sid for sid, c in truth.get(query).contributions_k.items() if c > 0
            }
            assert set(decision.shard_ids) == (contributors or {0})

    def test_budget_covers_kept(self, unit_testbed):
        truth = unit_testbed.truth_for(unit_testbed.wikipedia_trace)
        oracle = OraclePolicy(unit_testbed.cluster, truth)
        from repro.cluster.types import ClusterView

        n = unit_testbed.cluster.n_shards
        view = ClusterView(
            now_ms=0.0, n_shards=n,
            default_freq_ghz=unit_testbed.cluster.freq_scale.default_ghz,
            max_freq_ghz=unit_testbed.cluster.freq_scale.max_ghz,
            queued_predicted_ms=tuple(0.0 for _ in range(n)),
        )
        query = unit_testbed.wikipedia_trace[0]
        decision = oracle.decide(query, view)
        boost = unit_testbed.cluster.freq_scale.boost_ratio
        for sid in decision.shard_ids:
            boosted = unit_testbed.cluster.service_time_ms(query, sid) / boost
            assert boosted <= decision.time_budget_ms + 1e-9

    def test_slack_validation(self, unit_testbed):
        truth = unit_testbed.truth_for(unit_testbed.wikipedia_trace)
        with pytest.raises(ValueError):
            OraclePolicy(unit_testbed.cluster, truth, budget_slack=0.9)
