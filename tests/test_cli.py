"""Tests for the command-line interface."""

import pytest

from repro.cli import FIGURES, build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_build_index_args(self):
        args = build_parser().parse_args(["build-index", "--out", "x", "--scale", "unit"])
        assert args.out == "x"
        assert args.scale == "unit"

    def test_search_args(self):
        args = build_parser().parse_args(["search", "dir", "a", "b", "-k", "5"])
        assert args.terms == ["a", "b"]
        assert args.k == 5

    def test_figure_registry_covers_evaluation(self):
        for name in ("fig02", "fig10", "fig11", "fig13", "fig14", "fig15",
                     "tables", "headline"):
            assert name in FIGURES


class TestCommands:
    def test_build_index_then_search(self, tmp_path, capsys):
        out = tmp_path / "index"
        assert main(["build-index", "--scale", "unit", "--out", str(out)]) == 0
        captured = capsys.readouterr().out
        assert "wrote 8 shards" in captured

        assert main(["search", str(out), "t100", "--raw-terms", "-k", "3"]) == 0
        captured = capsys.readouterr().out
        assert "doc" in captured

    def test_search_no_terms_after_analysis(self, tmp_path, capsys):
        out = tmp_path / "index"
        main(["build-index", "--scale", "unit", "--out", str(out)])
        capsys.readouterr()
        # Pure stopwords analyze to nothing under the standard analyzer.
        assert main(["search", str(out), "the", "and"]) == 1

    def test_unknown_figure(self, capsys):
        assert main(["figure", "fig99"]) == 1
        assert "unknown figure" in capsys.readouterr().err

    def test_unknown_scale(self):
        with pytest.raises(SystemExit):
            main(["figure", "fig04", "--scale", "enormous"])


class TestFaultsCommand:
    def test_faults_args(self):
        args = build_parser().parse_args(
            ["faults", "--scenarios", "outage", "slow_replica",
             "--policies", "cottage", "--replicas", "3", "--seed", "9",
             "--out", "m.json"]
        )
        assert args.scenarios == ["outage", "slow_replica"]
        assert args.policies == ["cottage"]
        assert args.replicas == 3
        assert args.seed == 9
        assert args.out == "m.json"

    def test_unknown_scenario_exits_one(self, capsys):
        assert main(["faults", "--scenarios", "meteor_strike"]) == 1
        assert "unknown scenario" in capsys.readouterr().err

    def test_faults_matrix_writes_json(self, tmp_path, capsys):
        import json

        out = tmp_path / "BENCH_faults.json"
        code = main(
            ["faults", "--scale", "unit", "--scenarios", "outage",
             "--policies", "exhaustive", "--out", str(out)]
        )
        assert code == 0
        stdout = capsys.readouterr().out
        assert "scenario" in stdout and "outage" in stdout
        payload = json.loads(out.read_text())
        assert payload["scale"] == "unit"
        assert payload["response_timeout_ms"] == 150.0
        # One primary baseline plus hedged and tied cells.
        assert len(payload["cells"]) == 3
        modes = {cell["mode"] for cell in payload["cells"]}
        assert modes == {"primary", "hedged", "tied"}
        for cell in payload["cells"]:
            assert cell["scenario"] == "outage"
            assert cell["p99_latency_ms"] > 0.0


class TestServeCommand:
    def test_serve_args(self):
        args = build_parser().parse_args(
            ["serve", "--policy", "cottage", "--qps", "50", "100",
             "--queries", "500", "--arrival", "mmpp", "--seed", "7",
             "--max-in-flight", "64", "--out", "s.json",
             "--fail-knee-tolerance", "0.25"]
        )
        assert args.policy == "cottage"
        assert args.qps == [50.0, 100.0]
        assert args.queries == 500
        assert args.arrival == "mmpp"
        assert args.seed == 7
        assert args.max_in_flight == 64
        assert args.fail_knee_tolerance == 0.25

    def test_unknown_policy_exits_one(self, capsys):
        assert main(["serve", "--policy", "psychic"]) == 1
        assert "unknown policy" in capsys.readouterr().err

    def test_unknown_arrival_is_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--arrival", "fractal"])

    def test_unknown_scale(self):
        with pytest.raises(SystemExit):
            main(["serve", "--scale", "enormous"])

    def test_invalid_campaign_exits_one(self, capsys):
        assert main(["serve", "--queries", "0"]) == 1
        assert "invalid campaign" in capsys.readouterr().err

    def test_serve_sweep_writes_json_and_gates(self, tmp_path, capsys):
        import json

        out = tmp_path / "BENCH_serving.json"
        code = main(
            ["serve", "--scale", "unit", "--policy", "exhaustive",
             "--queries", "200", "--distinct", "30", "--out", str(out)]
        )
        assert code == 0
        stdout = capsys.readouterr().out
        assert "measured knee" in stdout and "predicted saturation" in stdout
        payload = json.loads(out.read_text())
        assert payload["policy"] == "exhaustive"
        assert payload["knee"]["saturated"] is True
        assert payload["points"]
        for point in payload["points"]:
            assert point["completed"] + point["shed"] == point["offered_queries"]

        # An unsaturated sweep (rates far below the knee) fails the gate.
        predicted = payload["predicted_knee_qps"]
        low = str(round(0.2 * predicted, 1))
        code = main(
            ["serve", "--scale", "unit", "--policy", "exhaustive",
             "--queries", "60", "--distinct", "30", "--qps", low,
             "--fail-knee-tolerance", "0.25"]
        )
        assert code == 1
        assert "FAIL" in capsys.readouterr().err


class TestLintCommand:
    """The `repro lint` exit-code contract: 0 clean, 1 findings, 2 error."""

    def write(self, tmp_path, name, source):
        target = tmp_path / "repro" / "core" / name
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
        return target

    def lint(self, tmp_path, *extra):
        return main(
            ["lint", str(tmp_path / "repro"), "--root", str(tmp_path), *extra]
        )

    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        self.write(tmp_path, "clean.py", "def f(x):\n    return x + 1\n")
        assert self.lint(tmp_path) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_exit_one_on_findings(self, tmp_path, capsys):
        self.write(tmp_path, "dirty.py", "import random\nx = random.random()\n")
        assert self.lint(tmp_path) == 1
        out = capsys.readouterr().out
        assert "DET-RNG" in out and "dirty.py:2" in out

    def test_exit_two_on_syntax_error(self, tmp_path, capsys):
        self.write(tmp_path, "broken.py", "def broken(:\n")
        assert self.lint(tmp_path) == 2
        assert "syntax error" in capsys.readouterr().err

    def test_exit_two_on_missing_path(self, tmp_path, capsys):
        code = main(["lint", str(tmp_path / "nope"), "--root", str(tmp_path)])
        assert code == 2
        assert "internal error" in capsys.readouterr().err

    def test_exit_two_on_unknown_rule(self, tmp_path, capsys):
        self.write(tmp_path, "clean.py", "x = 1\n")
        assert self.lint(tmp_path, "--rules", "NO-SUCH-RULE") == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_github_format_emits_annotations(self, tmp_path, capsys):
        self.write(tmp_path, "dirty.py", "import random\nx = random.random()\n")
        assert self.lint(tmp_path, "--format", "github") == 1
        out = capsys.readouterr().out
        assert "::error file=" in out and "title=simlint DET-RNG" in out

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        self.write(tmp_path, "dirty.py", "import random\nx = random.random()\n")
        assert self.lint(tmp_path, "--write-baseline") == 0
        assert (tmp_path / "simlint-baseline.json").exists()
        capsys.readouterr()
        # Grandfathered finding no longer fails; summary says it was baselined.
        assert self.lint(tmp_path, "--no-cache") == 0
        assert "1 baselined" in capsys.readouterr().out

    def test_rule_subset_filter(self, tmp_path):
        self.write(
            tmp_path, "dirty.py",
            "import random\nx = random.random()\ndef f(a=[]):\n    return a\n",
        )
        assert self.lint(tmp_path, "--rules", "MUT-DEFAULT") == 1
        # The cache is keyed on the rule set, so the broader run re-analyzes.
        assert self.lint(tmp_path, "--rules", "DET-CLOCK") == 0
