"""Tests for the command-line interface."""

import pytest

from repro.cli import FIGURES, build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_build_index_args(self):
        args = build_parser().parse_args(["build-index", "--out", "x", "--scale", "unit"])
        assert args.out == "x"
        assert args.scale == "unit"

    def test_search_args(self):
        args = build_parser().parse_args(["search", "dir", "a", "b", "-k", "5"])
        assert args.terms == ["a", "b"]
        assert args.k == 5

    def test_figure_registry_covers_evaluation(self):
        for name in ("fig02", "fig10", "fig11", "fig13", "fig14", "fig15",
                     "tables", "headline"):
            assert name in FIGURES


class TestCommands:
    def test_build_index_then_search(self, tmp_path, capsys):
        out = tmp_path / "index"
        assert main(["build-index", "--scale", "unit", "--out", str(out)]) == 0
        captured = capsys.readouterr().out
        assert "wrote 8 shards" in captured

        assert main(["search", str(out), "t100", "--raw-terms", "-k", "3"]) == 0
        captured = capsys.readouterr().out
        assert "doc" in captured

    def test_search_no_terms_after_analysis(self, tmp_path, capsys):
        out = tmp_path / "index"
        main(["build-index", "--scale", "unit", "--out", str(out)])
        capsys.readouterr()
        # Pure stopwords analyze to nothing under the standard analyzer.
        assert main(["search", str(out), "the", "and"]) == 1

    def test_unknown_figure(self, capsys):
        assert main(["figure", "fig99"]) == 1
        assert "unknown figure" in capsys.readouterr().err

    def test_unknown_scale(self):
        with pytest.raises(SystemExit):
            main(["figure", "fig04", "--scale", "enormous"])
