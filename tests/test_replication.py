"""Replication layer: bit-identity with the seed cluster, selectors, hedging.

The load-bearing property: replication with the ``static`` selector in
``primary`` mode is *pure spare capacity* — a zero-fault run is
bit-identical (hits, scores, tie order, latencies, event counts) to the
single-replica cluster at any replica count and any executor worker
count.  Everything tail-tolerant is opt-in.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    LeastLoadedSelector,
    ReplicationConfig,
    SearchCluster,
    SeededSelector,
    StaticSelector,
    hedge_delay_ms,
    make_selector,
)
from repro.policies import AggregationPolicy, ExhaustivePolicy
from repro.retrieval import Query, QueryTrace, make_executor


def small_trace(n=20, gap_s=0.01):
    terms_pool = [("t1",), ("t2", "t12"), ("t5",), ("t11", "t3"), ("t21",)]
    return QueryTrace(
        name="test",
        queries=[
            Query(
                query_id=i,
                terms=terms_pool[i % len(terms_pool)],
                arrival_time=i * gap_s,
            )
            for i in range(n)
        ],
    )


def make_policy(name):
    if name == "exhaustive":
        return ExhaustivePolicy()
    return AggregationPolicy(budget_percentile=60.0, epoch_queries=8)


def fingerprint(run):
    """Everything a replication-transparent run must reproduce exactly.

    Package power is deliberately *not* included: spare replicas draw
    static power by construction (see the dedicated test below).
    """
    return (
        tuple(
            (
                r.query.query_id,
                r.arrival_ms,
                r.latency_ms,
                tuple(r.result.hits),  # doc ids AND scores AND tie order
                r.decision.shard_ids,
                r.decision.time_budget_ms,
                r.n_counted,
                r.n_dropped_shards,
            )
            for r in run.records
        ),
        run.events_processed,
        run.clamped_schedules,
        run.searcher_computations,
    )


class TestBitIdentity:
    @settings(deadline=None)
    @given(
        n_replicas=st.integers(min_value=1, max_value=3),
        workers=st.sampled_from([1, 2]),
        policy=st.sampled_from(["exhaustive", "aggregation"]),
        n_queries=st.integers(min_value=8, max_value=24),
        gap_ms=st.sampled_from([2.0, 8.0, 25.0]),
    )
    def test_primary_mode_identical_to_seed_cluster(
        self, shards, n_replicas, workers, policy, n_queries, gap_ms
    ):
        trace = small_trace(n_queries, gap_s=gap_ms / 1000.0)
        baseline = SearchCluster(shards, k=5).run_trace(trace, make_policy(policy))
        replicated = SearchCluster(
            shards, k=5, executor=make_executor(workers)
        ).run_trace(
            trace,
            make_policy(policy),
            replication=ReplicationConfig(n_replicas=n_replicas),
        )
        assert fingerprint(replicated) == fingerprint(baseline)
        # Spares never touched: no tail-tolerance machinery fired.
        assert replicated.hedges_issued == 0
        assert replicated.cancels_sent == 0
        assert replicated.duplicates_dropped == 0

    def test_replication_defaults_are_off(self, shards):
        trace = small_trace()
        explicit = SearchCluster(shards, k=5).run_trace(
            trace, ExhaustivePolicy(), replication=ReplicationConfig()
        )
        implicit = SearchCluster(shards, k=5).run_trace(trace, ExhaustivePolicy())
        assert fingerprint(explicit) == fingerprint(implicit)

    def test_hedged_mode_with_one_replica_degrades_to_primary(self, shards):
        trace = small_trace()
        baseline = SearchCluster(shards, k=5).run_trace(trace, ExhaustivePolicy())
        hedged = SearchCluster(shards, k=5).run_trace(
            trace,
            ExhaustivePolicy(),
            replication=ReplicationConfig(n_replicas=1, mode="hedged"),
        )
        assert fingerprint(hedged) == fingerprint(baseline)
        assert hedged.hedges_issued == 0

    def test_spare_replicas_add_only_static_power(self, shards):
        """R idle spares draw static watts; the dynamic component (the
        part Fig. 14 compares across policies) is untouched."""
        trace = small_trace()
        baseline = SearchCluster(shards, k=5).run_trace(trace, ExhaustivePolicy())
        replicated = SearchCluster(shards, k=5).run_trace(
            trace, ExhaustivePolicy(), replication=ReplicationConfig(n_replicas=3)
        )
        assert replicated.power.dynamic_power_w == pytest.approx(
            baseline.power.dynamic_power_w
        )
        assert replicated.power.idle_package_w > baseline.power.idle_package_w
        assert len(replicated.power.per_core_utilization) == 3 * len(
            baseline.power.per_core_utilization
        )

    def test_tied_mode_zero_faults_same_answers(self, shards):
        """Tied dispatch races identical replicas: answers (hits, scores,
        tie order) match the seed cluster; only the race accounting moves."""
        trace = small_trace()
        baseline = SearchCluster(shards, k=5).run_trace(trace, ExhaustivePolicy())
        tied = SearchCluster(shards, k=5).run_trace(
            trace,
            ExhaustivePolicy(),
            replication=ReplicationConfig(n_replicas=2, mode="tied"),
        )
        assert len(tied.records) == len(baseline.records)
        for a, b in zip(tied.records, baseline.records):
            assert tuple(a.result.hits) == tuple(b.result.hits)
        # Each tied pair resolved exactly once.
        assert all(r.n_counted <= len(shards) for r in tied.records)


class _StubISN:
    def __init__(self, queued):
        self.queued_work_default_ms = queued


class TestSelectors:
    def test_static_is_identity(self):
        group = [_StubISN(5.0), _StubISN(0.0), _StubISN(2.0)]
        selector = StaticSelector()
        assert selector.order(0, group, 0.0) == (0, 1, 2)
        assert selector.queue_view(group) == 5.0

    def test_least_loaded_prefers_smallest_backlog(self):
        group = [_StubISN(5.0), _StubISN(0.5), _StubISN(2.0)]
        selector = LeastLoadedSelector()
        assert selector.order(0, group, 0.0) == (1, 2, 0)
        assert selector.queue_view(group) == 0.5

    def test_least_loaded_ties_to_lowest_replica(self):
        group = [_StubISN(1.0), _StubISN(1.0)]
        assert LeastLoadedSelector().order(0, group, 0.0) == (0, 1)

    def test_seeded_selector_is_a_pure_function_of_seed(self):
        group = [_StubISN(0.0) for _ in range(4)]
        a = make_selector(ReplicationConfig(n_replicas=4, selector="seeded", seed=7))
        b = make_selector(ReplicationConfig(n_replicas=4, selector="seeded", seed=7))
        orders_a = [a.order(sid, group, 0.0) for sid in range(32)]
        orders_b = [b.order(sid, group, 0.0) for sid in range(32)]
        assert orders_a == orders_b
        assert any(order[0] != 0 for order in orders_a)  # actually rotates

    def test_seeded_order_is_a_rotation(self):
        group = [_StubISN(0.0) for _ in range(4)]
        selector = SeededSelector.__new__(SeededSelector)
        import random

        selector.rng = random.Random(3)
        for _ in range(16):
            order = selector.order(0, group, 0.0)
            assert sorted(order) == [0, 1, 2, 3]
            assert order == tuple((order[0] + i) % 4 for i in range(4))

    def test_seeded_queue_view_reads_without_drawing(self):
        group = [_StubISN(2.0), _StubISN(4.0)]
        selector = make_selector(
            ReplicationConfig(n_replicas=2, selector="seeded", seed=1)
        )
        state = selector.rng.getstate()
        assert selector.queue_view(group) == pytest.approx(3.0)
        assert selector.rng.getstate() == state  # no RNG perturbation


class TestHedgeDelay:
    CFG = ReplicationConfig(
        n_replicas=2, mode="hedged", hedge_floor_ms=0.5, hedge_fixed_ms=25.0
    )

    def test_unbudgeted_falls_back_to_fixed_delay(self):
        assert hedge_delay_ms(None, 10.0, 0.0, 0.1, self.CFG) == 25.0

    def test_budget_aware_delay_is_budget_minus_backup_eta(self):
        # backup needs 3 (queue) + 10 (service) + 0.5 (network) = 13.5 ms,
        # so the last useful hedge instant is 20 - 13.5 = 6.5 ms in.
        assert hedge_delay_ms(20.0, 10.0, 3.0, 0.5, self.CFG) == pytest.approx(6.5)

    def test_hopeless_primary_hedges_at_the_floor(self):
        # Predicted service alone exceeds the budget: hedge immediately.
        assert hedge_delay_ms(5.0, 10.0, 0.0, 0.1, self.CFG) == 0.5

    def test_busier_backup_hedges_earlier(self):
        idle = hedge_delay_ms(20.0, 8.0, 0.0, 0.1, self.CFG)
        busy = hedge_delay_ms(20.0, 8.0, 6.0, 0.1, self.CFG)
        assert busy < idle


class TestReplicationConfig:
    def test_rejects_zero_replicas(self):
        with pytest.raises(ValueError):
            ReplicationConfig(n_replicas=0)

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            ReplicationConfig(mode="speculative")

    def test_rejects_unknown_selector(self):
        with pytest.raises(ValueError):
            ReplicationConfig(selector="round_robin")

    def test_rejects_negative_hedge_floor(self):
        with pytest.raises(ValueError):
            ReplicationConfig(hedge_floor_ms=-1.0)
