"""Unit tests for the baseline selection policies."""

import pytest

from repro.cluster.types import ClusterView, Decision, QueryRecord
from repro.index import CentralSampleIndex, Document, partition_round_robin
from repro.index.term_stats import TermStatsIndex
from repro.policies import (
    AggregationPolicy,
    ExhaustivePolicy,
    RankSPolicy,
    TailyPolicy,
)
from repro.predictors import TailyQualityEstimator
from repro.retrieval import Query, SearchResult
from repro.text import WhitespaceAnalyzer


def view(n_shards=4, queue=None):
    return ClusterView(
        now_ms=0.0,
        n_shards=n_shards,
        default_freq_ghz=2.1,
        max_freq_ghz=2.7,
        queued_predicted_ms=tuple(queue or [0.0] * n_shards),
    )


def record(latency_ms, query_id=0):
    return QueryRecord(
        query=Query(query_id=query_id, terms=("t1",)),
        arrival_ms=0.0,
        latency_ms=latency_ms,
        result=SearchResult(),
        decision=Decision(shard_ids=(0,)),
    )


class TestExhaustive:
    def test_selects_everything_no_budget(self):
        decision = ExhaustivePolicy().decide(Query(query_id=0, terms=("t1",)), view())
        assert decision.shard_ids == (0, 1, 2, 3)
        assert decision.time_budget_ms is None
        assert decision.frequency_overrides == {}


class TestAggregation:
    def test_initial_budget_used(self):
        policy = AggregationPolicy(initial_budget_ms=42.0)
        decision = policy.decide(Query(query_id=0, terms=("t1",)), view())
        assert decision.time_budget_ms == 42.0
        assert decision.shard_ids == (0, 1, 2, 3)

    def test_budget_adapts_to_epoch_percentile(self):
        policy = AggregationPolicy(
            budget_percentile=50.0, epoch_queries=4, initial_budget_ms=100.0
        )
        for latency in (10.0, 20.0, 30.0, 40.0):
            policy.observe(record(latency))
        assert policy.budget_ms == pytest.approx(25.0)

    def test_no_update_mid_epoch(self):
        policy = AggregationPolicy(epoch_queries=10, initial_budget_ms=100.0)
        for latency in (1.0, 2.0, 3.0):
            policy.observe(record(latency))
        assert policy.budget_ms == 100.0

    def test_budget_floor(self):
        policy = AggregationPolicy(epoch_queries=2, initial_budget_ms=50.0)
        policy.observe(record(0.0))
        policy.observe(record(0.0))
        assert policy.budget_ms >= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            AggregationPolicy(budget_percentile=0.0)
        with pytest.raises(ValueError):
            AggregationPolicy(epoch_queries=0)
        with pytest.raises(ValueError):
            AggregationPolicy(initial_budget_ms=0.0)


@pytest.fixture(scope="module")
def taily_estimator(shards):
    return TailyQualityEstimator([TermStatsIndex(s, k=5) for s in shards])


class TestTaily:
    def test_selects_shards_with_expected_docs(self, taily_estimator, shards):
        policy = TailyPolicy(taily_estimator, min_expected_docs=0.1)
        term = max(shards[0].terms(), key=lambda t: shards[0].doc_freq(t))
        decision = policy.decide(Query(query_id=0, terms=(term,)), view())
        assert decision.shard_ids
        assert decision.time_budget_ms is None

    def test_fallback_keeps_best_shard(self, taily_estimator):
        policy = TailyPolicy(taily_estimator, min_expected_docs=1e9)
        decision = policy.decide(Query(query_id=0, terms=("t1",)), view())
        assert len(decision.shard_ids) == 1

    def test_decisions_cached(self, taily_estimator):
        policy = TailyPolicy(taily_estimator)
        query = Query(query_id=0, terms=("t1",))
        first = policy.decide(query, view())
        second = policy.decide(Query(query_id=9, terms=("t1",)), view())
        assert first.shard_ids == second.shard_ids
        assert ("t1",) in policy._cache

    def test_validation(self, taily_estimator):
        with pytest.raises(ValueError):
            TailyPolicy(taily_estimator, min_expected_docs=-1.0)


@pytest.fixture(scope="module")
def csi():
    docs = [
        Document(doc_id=i, text=f"shared topic{i % 4} extra{i}") for i in range(80)
    ]
    return CentralSampleIndex.build(
        partition_round_robin(docs, 4), min_per_shard=10,
        analyzer=WhitespaceAnalyzer(),
    )


class TestRankS:
    def test_votes_decay_with_rank(self, csi):
        policy = RankSPolicy(csi, decay_base=2.0, sample_depth=20)
        votes, cost_ms = policy.shard_votes(Query(query_id=0, terms=("shared",)))
        assert votes and cost_ms > 0
        assert all(v > 0 for v in votes.values())

    def test_threshold_filters(self, csi):
        query = Query(query_id=0, terms=("shared",))
        lenient = RankSPolicy(csi, vote_threshold=0.01).decide(query, view())
        strict = RankSPolicy(csi, vote_threshold=0.45).decide(query, view())
        assert set(strict.shard_ids) <= set(lenient.shard_ids)

    def test_unknown_terms_fall_back_to_exhaustive(self, csi):
        policy = RankSPolicy(csi)
        decision = policy.decide(Query(query_id=0, terms=("zzz-none",)), view())
        assert decision.shard_ids == (0, 1, 2, 3)

    def test_csi_cost_charged(self, csi):
        policy = RankSPolicy(csi)
        decision = policy.decide(Query(query_id=0, terms=("shared",)), view())
        assert decision.coordination_delay_ms > 0

    def test_votes_cached(self, csi):
        policy = RankSPolicy(csi)
        query = Query(query_id=0, terms=("shared",))
        assert policy.shard_votes(query) is policy.shard_votes(query)

    def test_validation(self, csi):
        with pytest.raises(ValueError):
            RankSPolicy(csi, decay_base=1.0)
        with pytest.raises(ValueError):
            RankSPolicy(csi, vote_threshold=0.0)
        with pytest.raises(ValueError):
            RankSPolicy(csi, sample_depth=0)
