"""Whole-program simlint self-tests: graph, flow rules, layers, caching.

The fixture tree models the one shape per-file analysis cannot judge: a
``util`` helper that legitimately touches a nondeterminism source (and
suppresses the local rule with a pragma), and a simulation module that
imports the helper.  The cross-module findings must land at the *call
site* in the consuming module, with a witness chain back to the source.
"""

import json
from pathlib import Path

from repro.analysis import (
    LintEngine,
    all_rules,
    build_graph,
    get_rules,
    run_lint,
    to_sarif,
)

REPO_ROOT = Path(__file__).resolve().parents[1]

TIMING_CLEAN = """\
def now_wall():
    return 123.0
"""

TIMING_CLOCK = """\
import time


def now_wall():
    return time.time()  # simlint: disable=DET-CLOCK -- host measurement only
"""

RAND_SOURCE = """\
import random


def jitter():
    return random.random()  # simlint: disable=DET-RNG -- legacy seed path
"""

FAN_SOURCE = """\
from concurrent.futures import ProcessPoolExecutor


def fan_out(fn, items):
    process_pool = ProcessPoolExecutor()
    return [process_pool.submit(fn, item) for item in items]
"""

ENGINE_SOURCE = """\
from repro.util.timing import now_wall


def step():
    return now_wall()
"""

DRIVER_SOURCE = """\
from repro.util.fan import fan_out
from repro.util.rand import jitter


def drive(items):
    return fan_out(lambda x: x + 1, items)


def perturb(value):
    return value + jitter()
"""

FLOW_TREE = {
    "__init__.py": "",
    "util/__init__.py": "",
    "util/timing.py": TIMING_CLOCK,
    "util/rand.py": RAND_SOURCE,
    "util/fan.py": FAN_SOURCE,
    "cluster/__init__.py": "",
    "cluster/engine.py": ENGINE_SOURCE,
    "cluster/driver.py": DRIVER_SOURCE,
}


def write_tree(root, files):
    for rel, source in files.items():
        target = root / "repro" / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
    return root / "repro"


def lint_tree(tmp_path, files, **kwargs):
    target = write_tree(tmp_path, files)
    kwargs.setdefault("use_cache", False)
    return run_lint([target], root=tmp_path, **kwargs)


def rule_hits(report, rule_id):
    return [f for f in report.findings if f.rule == rule_id]


class TestProjectGraph:
    def test_modules_edges_and_reachability(self, tmp_path):
        target = write_tree(tmp_path, FLOW_TREE)
        project = build_graph([target], root=tmp_path)

        assert "repro.util.timing" in project.modules
        assert "repro.cluster.driver" in project.modules

        driver_targets = {e.target for e in project.edges["repro.cluster.driver"]}
        assert {"repro.util.fan", "repro.util.rand"} <= driver_targets
        assert all(e.top_level for e in project.edges["repro.cluster.driver"])

        reachable = project.reachable("repro.cluster.engine")
        assert "repro.util.timing" in reachable
        assert "repro.util.fan" not in reachable

    def test_from_import_binds_member(self, tmp_path):
        target = write_tree(tmp_path, FLOW_TREE)
        project = build_graph([target], root=tmp_path)
        assert (
            project.bindings["repro.cluster.engine"]["now_wall"]
            == "repro.util.timing:now_wall"
        )

    def test_dependency_hash_tracks_the_closure(self, tmp_path):
        target = write_tree(tmp_path, FLOW_TREE)
        before = build_graph([target], root=tmp_path)
        engine_before = before.dependency_hash("repro.cluster.engine")
        driver_before = before.dependency_hash("repro.cluster.driver")

        (target / "util" / "timing.py").write_text(TIMING_CLEAN)
        after = build_graph([target], root=tmp_path)
        # engine imports timing -> its closure hash moves; driver does not
        assert after.dependency_hash("repro.cluster.engine") != engine_before
        assert after.dependency_hash("repro.cluster.driver") == driver_before

    def test_exports_render(self, tmp_path):
        target = write_tree(tmp_path, FLOW_TREE)
        project = build_graph([target], root=tmp_path)
        dot = project.to_dot()
        assert dot.startswith("digraph") and "repro.util.timing" in dot
        data = project.to_json()
        assert "repro.cluster.engine" in data["modules"]
        assert any(
            e["source"] == "repro.cluster.engine"
            and e["target"] == "repro.util.timing"
            for e in data["edges"]
        )


class TestDetClockFlow:
    def test_cross_module_call_site_flagged(self, tmp_path):
        report = lint_tree(tmp_path, FLOW_TREE)
        hits = rule_hits(report, "DET-CLOCK-FLOW")
        assert len(hits) == 1
        finding = hits[0]
        assert finding.path == "repro/cluster/engine.py"
        assert finding.line == 5  # the now_wall() call, not the source
        assert "time.time()" in finding.message  # witness chain endpoint
        # the per-file rule stayed silent: the read is pragma'd at source
        assert not rule_hits(report, "DET-CLOCK")

    def test_clean_helper_not_flagged(self, tmp_path):
        tree = dict(FLOW_TREE)
        tree["util/timing.py"] = TIMING_CLEAN
        report = lint_tree(tmp_path, tree)
        assert not rule_hits(report, "DET-CLOCK-FLOW")

    def test_exempt_caller_not_flagged(self, tmp_path):
        tree = dict(FLOW_TREE)
        tree["telemetry/__init__.py"] = ""
        tree["telemetry/probe.py"] = (
            "from repro.util.timing import now_wall\n"
            "\n"
            "\n"
            "def stamp():\n"
            "    return now_wall()\n"
        )
        report = lint_tree(tmp_path, tree)
        assert not any(
            f.path.startswith("repro/telemetry/") for f in report.findings
        )


class TestDetRngFlow:
    def test_cross_module_call_site_flagged(self, tmp_path):
        report = lint_tree(tmp_path, FLOW_TREE)
        hits = rule_hits(report, "DET-RNG-FLOW")
        assert len(hits) == 1
        assert hits[0].path == "repro/cluster/driver.py"
        assert "jitter" in hits[0].message
        assert not rule_hits(report, "DET-RNG")

    def test_seeded_helper_not_flagged(self, tmp_path):
        tree = dict(FLOW_TREE)
        tree["util/rand.py"] = (
            "import random\n"
            "\n"
            "_RNG = random.Random(7)\n"
            "\n"
            "\n"
            "def jitter():\n"
            "    return _RNG.random()\n"
        )
        report = lint_tree(tmp_path, tree)
        assert not rule_hits(report, "DET-RNG-FLOW")


class TestParPickleFlow:
    def test_lambda_through_wrapper_flagged(self, tmp_path):
        report = lint_tree(tmp_path, FLOW_TREE)
        hits = rule_hits(report, "PAR-PICKLE-FLOW")
        assert len(hits) == 1
        finding = hits[0]
        assert finding.path == "repro/cluster/driver.py"
        assert finding.line == 6  # the fan_out(lambda ...) call
        assert "fan_out" in finding.message
        # the per-file rule cannot see through the wrapper
        assert not rule_hits(report, "PAR-PICKLE")

    def test_module_level_function_not_flagged(self, tmp_path):
        tree = dict(FLOW_TREE)
        tree["cluster/driver.py"] = (
            "from repro.util.fan import fan_out\n"
            "\n"
            "\n"
            "def bump(x):\n"
            "    return x + 1\n"
            "\n"
            "\n"
            "def drive(items):\n"
            "    return fan_out(bump, items)\n"
        )
        report = lint_tree(tmp_path, tree)
        assert not rule_hits(report, "PAR-PICKLE-FLOW")


LAYER_BAD = {
    "__init__.py": "",
    "index/__init__.py": "",
    "index/store.py": "from repro.retrieval.kernels import score\n",
    "retrieval/__init__.py": "",
    "retrieval/kernels.py": "def score(x):\n    return x\n",
}


class TestArchLayer:
    def test_back_edge_flagged(self, tmp_path):
        report = lint_tree(tmp_path, LAYER_BAD)
        hits = rule_hits(report, "ARCH-LAYER")
        assert len(hits) == 1
        finding = hits[0]
        assert finding.path == "repro/index/store.py"
        assert "retrieval" in finding.message

    def test_downward_edge_clean(self, tmp_path):
        tree = {
            "__init__.py": "",
            "index/__init__.py": "",
            "index/store.py": "def load():\n    return ()\n",
            "retrieval/__init__.py": "",
            "retrieval/kernels.py": "from repro.index.store import load\n",
        }
        report = lint_tree(tmp_path, tree)
        assert not rule_hits(report, "ARCH-LAYER")

    def test_type_checking_and_lazy_imports_sanctioned(self, tmp_path):
        tree = dict(LAYER_BAD)
        tree["index/store.py"] = (
            "from typing import TYPE_CHECKING\n"
            "\n"
            "if TYPE_CHECKING:\n"
            "    from repro.retrieval.kernels import score\n"
            "\n"
            "\n"
            "def rescore(x):\n"
            "    from repro.retrieval.kernels import score\n"
            "    return score(x)\n"
        )
        report = lint_tree(tmp_path, tree)
        assert not rule_hits(report, "ARCH-LAYER")


class TestDependencyAwareCache:
    def run_cached(self, tmp_path, **kwargs):
        return run_lint(
            [tmp_path / "repro"],
            root=tmp_path,
            cache_path=tmp_path / "cache.json",
            **kwargs,
        )

    def test_warm_run_parses_nothing(self, tmp_path):
        write_tree(tmp_path, FLOW_TREE)
        cold = self.run_cached(tmp_path)
        assert cold.files_parsed == len(FLOW_TREE)
        assert cold.project_cache_hits == 0

        warm = self.run_cached(tmp_path)
        assert warm.files_parsed == 0
        assert warm.cache_hits == len(FLOW_TREE)
        assert warm.project_cache_hits == len(FLOW_TREE)
        assert warm.findings == cold.findings

    def test_editing_a_dependency_revives_flow_findings(self, tmp_path):
        # Start with a clean helper: no flow finding anywhere.
        tree = dict(FLOW_TREE)
        tree["util/timing.py"] = TIMING_CLEAN
        target = write_tree(tmp_path, tree)
        cold = self.run_cached(tmp_path)
        assert not rule_hits(cold, "DET-CLOCK-FLOW")

        # Introduce the clock read in the helper ONLY.  engine.py is
        # byte-identical (per-file cache hit) yet must pick up the new
        # cross-module finding — the dependency hash forces phase C.
        (target / "util" / "timing.py").write_text(TIMING_CLOCK)
        warm = self.run_cached(tmp_path)
        assert warm.files_parsed == 1  # just the edited helper
        assert warm.cache_hits == len(FLOW_TREE) - 1
        assert warm.project_cache_hits == 0
        hits = rule_hits(warm, "DET-CLOCK-FLOW")
        assert len(hits) == 1 and hits[0].path == "repro/cluster/engine.py"

    def test_touched_file_alone_does_not_rerun_project_rules(self, tmp_path):
        write_tree(tmp_path, FLOW_TREE)
        cold = self.run_cached(tmp_path)
        # a leaf nobody imports: editing it re-parses one file but every
        # dependency closure that matters is unchanged except its own
        (tmp_path / "repro" / "standalone.py").write_text("VALUE = 1\n")
        first = self.run_cached(tmp_path)
        (tmp_path / "repro" / "standalone.py").write_text("VALUE = 2\n")
        second = self.run_cached(tmp_path)
        assert second.files_parsed == 1
        assert second.findings == first.findings == cold.findings


class TestParallelJobs:
    def test_findings_identical_at_any_job_count(self, tmp_path):
        serial = lint_tree(tmp_path, FLOW_TREE, jobs=1)
        parallel = run_lint(
            [tmp_path / "repro"], root=tmp_path, use_cache=False, jobs=4
        )
        assert parallel.findings == serial.findings
        assert parallel.files_parsed == serial.files_parsed
        assert len(serial.findings) == 3  # one per flow rule


class TestSarif:
    def test_sarif_log_shape(self, tmp_path):
        report = lint_tree(tmp_path, FLOW_TREE)
        log = to_sarif(report, all_rules())
        assert log["version"] == "2.1.0"
        run = log["runs"][0]
        driver = run["tool"]["driver"]
        assert driver["name"] == "simlint"
        assert {r["id"] for r in driver["rules"]} >= {
            "DET-CLOCK-FLOW", "ARCH-LAYER",
        }
        assert len(run["results"]) == len(report.findings) == 3
        for result in run["results"]:
            assert result["partialFingerprints"]["simlint/v1"]
            location = result["locations"][0]["physicalLocation"]
            assert location["artifactLocation"]["uri"].startswith("repro/")
        # round-trips through json
        json.loads(json.dumps(log))


class TestGraphCli:
    def run_cli(self, tmp_path, capsys, fmt):
        from repro.cli import main

        write_tree(tmp_path, FLOW_TREE)
        code = main(
            [
                "lint",
                str(tmp_path / "repro"),
                "--root", str(tmp_path),
                "--cache", str(tmp_path / "cache.json"),
                "--graph", fmt,
            ]
        )
        assert code == 0
        return capsys.readouterr().out

    def test_dot_export(self, tmp_path, capsys):
        out = self.run_cli(tmp_path, capsys, "dot")
        assert out.startswith("digraph")
        assert "repro.cluster.engine" in out

    def test_json_export(self, tmp_path, capsys):
        data = json.loads(self.run_cli(tmp_path, capsys, "json"))
        assert set(data["modules"]) >= {"repro.util.fan", "repro.cluster.driver"}


class TestRealTree:
    def test_layer_contract_holds_on_src_repro(self, tmp_path):
        engine = LintEngine(
            root=REPO_ROOT,
            rules=get_rules(["ARCH-LAYER"]),
            cache_path=None,
        )
        report = engine.run([REPO_ROOT / "src" / "repro"])
        assert not report.findings, [f.render() for f in report.findings]
