"""Unit + property tests for conjunctive (AND) evaluation."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index import Document, IndexBuilder
from repro.retrieval import conjunctive_search, exhaustive_search
from repro.text import WhitespaceAnalyzer


def build_shard(n_docs=120, vocab=20, seed=0):
    rng = random.Random(seed)
    builder = IndexBuilder(0, analyzer=WhitespaceAnalyzer())
    for doc_id in range(n_docs):
        words = [f"w{rng.randint(0, vocab - 1)}" for _ in range(rng.randint(5, 25))]
        builder.add(Document(doc_id=doc_id, text=" ".join(words)))
    return builder.build()


def reference_and(shard, terms, k):
    """Brute-force intersection via doc-id sets + disjunctive scores."""
    doc_sets = []
    for term in terms:
        postings = shard.postings(term)
        doc_sets.append(set(postings.doc_ids.tolist()) if postings else set())
    common = set.intersection(*doc_sets) if doc_sets else set()
    full = exhaustive_search(shard, terms, shard.n_docs or 1)
    hits = [(doc, score) for doc, score in full.hits if doc in common]
    return hits[:k]


class TestConjunctive:
    def test_single_term_equals_disjunctive(self):
        shard = build_shard()
        a = conjunctive_search(shard, ["w3"], 10)
        b = exhaustive_search(shard, ["w3"], 10)
        assert a.hits == b.hits

    def test_two_terms_matches_reference(self):
        shard = build_shard()
        got = conjunctive_search(shard, ["w1", "w2"], 10)
        expected = reference_and(shard, ["w1", "w2"], 10)
        assert [d for d, _ in got.hits] == [d for d, _ in expected]

    def test_results_contain_all_terms(self):
        shard = build_shard()
        terms = ["w0", "w4", "w9"]
        result = conjunctive_search(shard, terms, 20)
        for doc_id, _ in result.hits:
            for term in terms:
                assert doc_id in set(shard.postings(term).doc_ids.tolist())

    def test_missing_term_empties_result(self):
        shard = build_shard()
        assert conjunctive_search(shard, ["w1", "nosuch"], 10).hits == []

    def test_empty_terms(self):
        shard = build_shard()
        assert conjunctive_search(shard, [], 10).hits == []

    def test_subset_of_disjunctive_docs(self):
        shard = build_shard()
        terms = ["w1", "w2"]
        conj = conjunctive_search(shard, terms, 100)
        disj = exhaustive_search(shard, terms, shard.n_docs)
        assert set(d for d, _ in conj.hits) <= set(d for d, _ in disj.hits)
        assert conj.cost.docs_evaluated <= disj.cost.docs_evaluated

    def test_k_validation(self):
        with pytest.raises(ValueError):
            conjunctive_search(build_shard(20), ["w0"], 0)


@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(0, 500),
    term_ids=st.lists(st.integers(0, 15), min_size=1, max_size=4, unique=True),
    k=st.integers(1, 12),
)
def test_conjunctive_matches_reference_property(seed, term_ids, k):
    shard = build_shard(n_docs=60, vocab=16, seed=seed)
    terms = [f"w{i}" for i in term_ids]
    got = conjunctive_search(shard, terms, k)
    expected = reference_and(shard, terms, k)
    assert [d for d, _ in got.hits] == [d for d, _ in expected]
    for (_, sa), (_, sb) in zip(got.hits, expected):
        assert sa == pytest.approx(sb, abs=1e-9)
