"""Unit tests for the discrete-event simulator core."""

import pytest

from repro.cluster import Simulator


class TestSimulator:
    def test_runs_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append("b"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(9.0, lambda: fired.append("c"))
        sim.run()
        assert fired == ["a", "b", "c"]
        assert sim.now == 9.0

    def test_same_time_fifo(self):
        sim = Simulator()
        fired = []
        for tag in "abc":
            sim.schedule(1.0, lambda t=tag: fired.append(t))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_nested_scheduling(self):
        sim = Simulator()
        fired = []

        def first():
            fired.append(("first", sim.now))
            sim.schedule(2.0, lambda: fired.append(("second", sim.now)))

        sim.schedule(1.0, first)
        sim.run()
        assert fired == [("first", 1.0), ("second", 3.0)]

    def test_schedule_at_absolute(self):
        sim = Simulator()
        fired = []
        sim.schedule(4.0, lambda: sim.schedule_at(2.0, lambda: fired.append(sim.now)))
        sim.run()
        assert fired == [4.0]  # past targets clamp to now

    def test_run_until(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(10))
        sim.run(until_ms=5.0)
        assert fired == [1]
        assert sim.now == 5.0
        assert sim.pending == 1
        sim.run()
        assert fired == [1, 10]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-1.0, lambda: None)

    def test_event_count(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 5
