"""Edge-case tests for the IndexShard API."""

import pytest

from repro.index import BLOCK_SIZE, Document, IndexBuilder
from repro.text import WhitespaceAnalyzer


@pytest.fixture(scope="module")
def shard():
    builder = IndexBuilder(3, analyzer=WhitespaceAnalyzer())
    builder.add(Document(doc_id=10, text="alpha beta beta"))
    builder.add(Document(doc_id=20, text="beta gamma"))
    return builder.build()


class TestShardAPI:
    def test_has_term(self, shard):
        assert shard.has_term("beta")
        assert not shard.has_term("delta")

    def test_doc_freq_absent_term(self, shard):
        assert shard.doc_freq("delta") == 0

    def test_idf_absent_term_is_max(self, shard):
        # df = 0 gives the largest idf the similarity can emit.
        assert shard.idf("delta") >= shard.idf("beta")

    def test_postings_and_scores_none_for_absent(self, shard):
        assert shard.postings("delta") is None
        assert shard.scores("delta") is None
        assert shard.upper_bound("delta") == 0.0

    def test_vocabulary_and_terms(self, shard):
        assert shard.vocabulary_size() == 3
        assert set(shard.terms()) == {"alpha", "beta", "gamma"}

    def test_contains_doc(self, shard):
        assert shard.contains_doc(10)
        assert not shard.contains_doc(11)

    def test_len_is_doc_count(self, shard):
        assert len(shard) == 2

    def test_shard_id(self, shard):
        assert shard.shard_id == 3

    def test_block_maxes_exist_for_all_terms(self, shard):
        for term in shard.terms():
            entry = shard.term(term)
            expected_blocks = (len(entry.postings) + BLOCK_SIZE - 1) // BLOCK_SIZE
            assert entry.block_maxes.shape == (expected_blocks,)

    def test_global_defaults_to_local_when_unset(self, shard):
        assert shard.n_docs_global == shard.n_docs
        assert shard.term("beta").global_doc_freq == shard.doc_freq("beta")
