"""Unit + integration tests for the aggregator result cache."""

import numpy as np
import pytest

from repro.cluster import ResultCache
from repro.retrieval.result import SearchResult


def result(doc_id=1):
    return SearchResult(hits=[(doc_id, 1.0)])


class TestResultCache:
    def test_miss_then_hit(self):
        cache = ResultCache(capacity=4)
        assert cache.get(("a",), 10, 0.0) is None
        cache.put(("a",), 10, result(), 0.0)
        assert cache.get(("a",), 10, 1.0).hits == [(1, 1.0)]
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_k_is_part_of_the_key(self):
        # Regression: a result merged at one depth must not answer a
        # lookup at another (a k=2 response would truncate a k=10 query).
        cache = ResultCache(capacity=4)
        cache.put(("a",), 2, result(1), 0.0)
        assert cache.get(("a",), 10, 1.0) is None
        cache.put(("a",), 10, result(9), 2.0)
        assert cache.get(("a",), 2, 3.0).hits == [(1, 1.0)]
        assert cache.get(("a",), 10, 3.0).hits == [(9, 1.0)]
        assert len(cache) == 2

    def test_lru_eviction(self):
        cache = ResultCache(capacity=2)
        cache.put(("a",), 10, result(1), 0.0)
        cache.put(("b",), 10, result(2), 0.0)
        cache.get(("a",), 10, 1.0)  # refresh a
        cache.put(("c",), 10, result(3), 2.0)  # evicts b
        assert (("a",), 10) in cache
        assert (("b",), 10) not in cache
        assert (("c",), 10) in cache
        assert cache.stats.evictions == 1

    def test_ttl_expiry(self):
        cache = ResultCache(capacity=4, ttl_ms=10.0)
        cache.put(("a",), 10, result(), 0.0)
        assert cache.get(("a",), 10, 5.0) is not None
        assert cache.get(("a",), 10, 20.0) is None  # expired
        assert (("a",), 10) not in cache

    def test_put_updates_existing(self):
        cache = ResultCache(capacity=2)
        cache.put(("a",), 10, result(1), 0.0)
        cache.put(("a",), 10, result(9), 1.0)
        assert len(cache) == 1
        assert cache.get(("a",), 10, 2.0).hits == [(9, 1.0)]

    def test_validation(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=0)
        with pytest.raises(ValueError):
            ResultCache(capacity=1, ttl_ms=0.0)
        with pytest.raises(ValueError):
            ResultCache(capacity=1, lookup_ms=-1.0)


class TestCachedRuns:
    def test_cache_cuts_latency_and_work(self, unit_testbed):
        trace = unit_testbed.wikipedia_trace
        policy = unit_testbed.make_policy("exhaustive")
        plain = unit_testbed.cluster.run_trace(trace, policy)
        cached = unit_testbed.cluster.run_trace(
            trace, unit_testbed.make_policy("exhaustive"),
            cache=ResultCache(capacity=512),
        )
        assert cached.cache_stats is not None
        # Zipf-popular traces repeat heavily: most lookups hit.
        assert cached.cache_stats.hit_rate > 0.4
        assert np.mean(cached.latencies_ms()) < np.mean(plain.latencies_ms())
        hits = [r for r in cached.records if r.from_cache]
        assert hits and all(r.docs_searched == 0 for r in hits)

    def test_cached_answers_match_exhaustive_truth(self, unit_testbed):
        trace = unit_testbed.wikipedia_trace
        truth = unit_testbed.truth_for(trace)
        cached = unit_testbed.cluster.run_trace(
            trace, unit_testbed.make_policy("exhaustive"),
            cache=ResultCache(capacity=512),
        )
        for record in cached.records:
            if record.from_cache:
                assert truth.precision(record.query, record.result.doc_ids()) == 1.0
