"""Tests for the regression-mode latency predictor (ablation model)."""

import numpy as np
import pytest

from repro.predictors.latency_regression import LatencyRegressor


def toy(n=400, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 15))
    service = np.exp(x[:, 0] * 0.8 + 2.0)
    return x, service


class TestLatencyRegressor:
    def test_learns_toy_problem(self):
        x, service = toy()
        model = LatencyRegressor(hidden_layers=2, hidden_units=32)
        model.fit(x, service, iterations=1200)
        assert model.accuracy(x, service) > 0.6
        assert model.median_relative_error(x, service) < 0.3

    def test_predictions_positive(self):
        x, service = toy(100)
        model = LatencyRegressor(hidden_layers=1, hidden_units=8)
        model.fit(x, service, iterations=50)
        assert (model.predict_service_ms(x) > 0).all()

    def test_predict_one(self):
        x, service = toy(50)
        model = LatencyRegressor(hidden_layers=1, hidden_units=8)
        model.fit(x, service, iterations=20)
        assert model.predict_one_ms(x[0]) > 0

    def test_untrained_raises(self):
        with pytest.raises(RuntimeError):
            LatencyRegressor().predict_service_ms(np.zeros((1, 15)))

    def test_nonpositive_service_rejected(self):
        x, service = toy(20)
        service[0] = 0.0
        with pytest.raises(ValueError):
            LatencyRegressor(hidden_layers=1, hidden_units=4).fit(x, service)

    def test_accuracy_tolerance_monotone(self):
        x, service = toy(200)
        model = LatencyRegressor(hidden_layers=1, hidden_units=16)
        model.fit(x, service, iterations=300)
        assert model.accuracy(x, service, rel_tolerance=0.5) >= model.accuracy(
            x, service, rel_tolerance=0.1
        )
