"""Tied/hedged request races: exactly-once commit under any finish order.

Tied dispatch races two replicas and recalls the loser; hedged dispatch
issues a late backup.  Both create the classic distributed races —
duplicate responses, cancels crossing finishes, stragglers landing after
finalize — and the aggregator must resolve every one of them to exactly
one merged response per shard and exactly one committed record per
query.  The Hypothesis stress randomizes per-replica speeds (hence
finish orders) via seeded slowdown schedules and checks the invariants
wholesale.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    Aggregator,
    CostModel,
    Decision,
    EnergyMeter,
    FaultSchedule,
    FrequencyScale,
    ISNServer,
    NetworkModel,
    PowerModel,
    ReplicationConfig,
    SearchCluster,
    Simulator,
    Slowdown,
)
from repro.policies import ExhaustivePolicy
from repro.retrieval import Query, QueryTrace, ShardSearcher


def small_trace(n=20, gap_s=0.005):
    terms_pool = [("t1",), ("t2", "t12"), ("t5",), ("t11", "t3"), ("t21",)]
    return QueryTrace(
        name="test",
        queries=[
            Query(
                query_id=i,
                terms=terms_pool[i % len(terms_pool)],
                arrival_time=i * gap_s,
            )
            for i in range(n)
        ],
    )


def assert_exactly_once(run, trace, n_shards):
    """The race invariants, checked wholesale over a finished run."""
    # Exactly one commit per query, in arrival order.
    assert len(run.records) == len(trace)
    assert [r.query.query_id for r in run.records] == [
        q.query_id for q in trace
    ]
    for record in run.records:
        # At most one merged (counted) response per shard...
        counted_by_shard = {}
        for outcome in record.outcomes:
            if outcome.counted:
                counted_by_shard.setdefault(outcome.shard_id, 0)
                counted_by_shard[outcome.shard_id] += 1
        assert all(n == 1 for n in counted_by_shard.values())
        # ...and a recalled-in-queue attempt is never the one merged.
        assert not any(o.counted and o.cancelled for o in record.outcomes)
    # Global accounting closes: every cancel was either delivered in
    # queue or arrived too late (the attempt had finished or aborted).
    assert run.cancelled_in_queue <= run.cancels_sent


class TestTiedStress:
    @settings(deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**20),
        gap_ms=st.sampled_from([1.0, 4.0, 15.0]),
        budgeted=st.booleans(),
    )
    def test_exactly_once_under_randomized_finish_orders(
        self, shards, seed, gap_ms, budgeted
    ):
        """Per-replica slowdown factors drawn from the seed scramble which
        replica answers first, shard by shard and query by query."""
        import random

        rng = random.Random(seed)
        slowdowns = [
            Slowdown(
                shard_id=sid,
                start_ms=0.0,
                end_ms=1e9,
                factor=rng.uniform(0.5, 6.0),
                replica_id=rid,
            )
            for sid in range(len(shards))
            for rid in range(2)
        ]
        trace = small_trace(16, gap_s=gap_ms / 1000.0)
        run = SearchCluster(shards, k=5).run_trace(
            trace,
            ExhaustivePolicy(),
            faults=FaultSchedule(slowdowns=slowdowns),
            response_timeout_ms=80.0 if not budgeted else None,
            replication=ReplicationConfig(n_replicas=2, mode="tied"),
        )
        assert_exactly_once(run, trace, len(shards))
        # Tied mode raced every (query, shard): each race either recalled
        # its loser in the queue or dropped its late response.
        races = sum(len(r.decision.shard_ids) for r in run.records)
        assert run.cancels_sent + run.duplicates_dropped <= 2 * races

    @settings(deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**20))
    def test_hedged_exactly_once_under_straggling_primaries(self, shards, seed):
        import random

        rng = random.Random(seed)
        slowdowns = [
            Slowdown(sid, 0.0, 1e9, rng.uniform(2.0, 25.0), replica_id=0)
            for sid in range(len(shards))
        ]
        trace = small_trace(16, gap_s=0.004)
        run = SearchCluster(shards, k=5).run_trace(
            trace,
            ExhaustivePolicy(),
            faults=FaultSchedule(slowdowns=slowdowns),
            response_timeout_ms=80.0,
            replication=ReplicationConfig(
                n_replicas=2, mode="hedged", hedge_fixed_ms=2.0
            ),
        )
        assert_exactly_once(run, trace, len(shards))
        assert run.hedge_wins <= run.hedges_issued


def _make_group(shards, shard_id, n_replicas, faults=None):
    searcher = ShardSearcher(shards[shard_id], k=5)
    return [
        ISNServer(
            shard_id=shard_id,
            searcher=searcher,
            cost_model=CostModel(),
            freq_scale=FrequencyScale(),
            meter=EnergyMeter(PowerModel()),
            faults=faults,
            replica_id=rid,
        )
        for rid in range(n_replicas)
    ]


class StaticPolicy:
    name = "static"

    def __init__(self, decision):
        self.decision = decision
        self.observed = []

    def decide(self, query, view):
        return self.decision

    def observe(self, record):
        self.observed.append(record)


class TestCancelRaces:
    """Deterministic single-query constructions of each race window."""

    def _run_one(self, shards, faults, decision, mode="tied", **kwargs):
        sim = Simulator()
        groups = [_make_group(shards, sid, 2, faults) for sid in range(len(shards))]
        aggregator = Aggregator(
            isns=groups,
            policy=StaticPolicy(decision),
            network=NetworkModel(),
            sim=sim,
            k=5,
            replication=ReplicationConfig(n_replicas=2, mode=mode, **kwargs),
        )
        sim.schedule_at(0.0, lambda: aggregator.on_query(Query(0, ("t1",))))
        sim.run()
        return aggregator, groups

    def test_loser_recalled_in_queue_does_zero_work(self, shards):
        # Replica 1 of shard 0 is wedged: another query occupies it first
        # so the tied attempt sits in its queue when the recall lands.
        faults = FaultSchedule(slowdowns=[Slowdown(0, 0.0, 1e9, 50.0, replica_id=1)])
        sim = Simulator()
        groups = [_make_group(shards, sid, 2, faults) for sid in range(len(shards))]
        aggregator = Aggregator(
            isns=groups,
            policy=StaticPolicy(Decision(shard_ids=(0,))),
            network=NetworkModel(),
            sim=sim,
            k=5,
            replication=ReplicationConfig(n_replicas=2, mode="tied"),
        )
        # Pre-occupy replica 1 so the tied attempt queues behind it.
        blocker = groups[0][1].make_job(
            Query(99, ("t2",)), 2.1, None, lambda *a: None
        )
        groups[0][1].submit(blocker, sim)
        sim.schedule_at(0.0, lambda: aggregator.on_query(Query(0, ("t1",))))
        sim.run()
        assert len(aggregator.records) == 1
        record = aggregator.records[0]
        assert record.n_counted == 1  # replica 0 answered, once
        # The recall reached replica 1's queue: zero work was spent there
        # (the winner finalizes the query immediately, so the recall
        # resolves after commit — the run-level counters carry it).
        assert aggregator.cancels_sent == 1
        assert aggregator.cancelled_in_queue == 1
        assert groups[0][1].jobs_cancelled == 1
        assert groups[0][1].jobs_processed == 1  # the blocker only

    def test_cancel_crossing_finish_drops_late_response_once(self, shards):
        # Both replicas idle: both start service immediately, the recall
        # reaches a replica already in service (no-op), and its later
        # response must be dropped — not merged twice.  A loser response
        # landing after the last winner finalized counts as a straggler
        # rather than a duplicate, hence >= n-1.
        aggregator, groups = self._run_one(
            shards, None, Decision(shard_ids=tuple(range(len(shards))))
        )
        assert len(aggregator.records) == 1
        record = aggregator.records[0]
        assert record.n_counted == len(shards)
        assert aggregator.duplicates_dropped >= len(shards) - 1
        assert aggregator.cancelled_in_queue == 0
        counted = [o for o in record.outcomes if o.counted]
        assert len(counted) == len(shards)
        assert len({o.shard_id for o in counted}) == len(shards)

    def test_cancel_after_finalize_is_harmless(self, shards):
        # Tight budget: the deadline finalizes the query while tied
        # attempts are still in service; their finishes, responses and
        # any cancel deliveries all land after finalize and must no-op.
        faults = FaultSchedule(
            slowdowns=[
                Slowdown(sid, 0.0, 1e9, 8.0) for sid in range(len(shards))
            ]
        )
        aggregator, groups = self._run_one(
            shards, faults, Decision(shard_ids=(0, 1), time_budget_ms=1.0)
        )
        assert len(aggregator.records) == 1  # exactly one commit, no crash
        record = aggregator.records[0]
        assert record.n_counted == 0  # nothing made the deadline
        assert record.latency_ms >= 1.0
        assert not any(o.counted for o in record.outcomes)

    def test_hedge_never_fires_after_finalize(self, shards):
        # Budget shorter than the fixed hedge delay: the query finalizes
        # (empty) before the hedge instant; the backup must stay unspent.
        faults = FaultSchedule(
            slowdowns=[Slowdown(0, 0.0, 1e9, 40.0, replica_id=0)]
        )
        aggregator, groups = self._run_one(
            shards,
            faults,
            Decision(shard_ids=(0,), time_budget_ms=1.0),
            mode="hedged",
            hedge_floor_ms=5.0,
        )
        assert len(aggregator.records) == 1
        assert aggregator.hedges_issued == 0
        assert groups[0][1].jobs_processed == 0  # backup replica untouched

    def test_hedge_win_routes_around_wedged_primary(self, shards):
        # Primary wedged 40x slow with a budget it cannot make but the
        # backup comfortably can: the hedge planner fires the backup at
        # the last useful instant and the backup's response wins.
        searcher = ShardSearcher(shards[0], k=5)
        service = CostModel().service_ms(
            searcher.search(Query(0, ("t1",))).cost, FrequencyScale().default_ghz
        )
        faults = FaultSchedule(
            slowdowns=[Slowdown(0, 0.0, 1e9, 40.0, replica_id=0)]
        )
        aggregator, groups = self._run_one(
            shards,
            faults,
            Decision(shard_ids=(0,), time_budget_ms=10.0 * service),
            mode="hedged",
        )
        assert len(aggregator.records) == 1
        record = aggregator.records[0]
        assert aggregator.hedges_issued == 1
        assert aggregator.hedge_wins == 1
        winner = [o for o in record.outcomes if o.counted]
        assert len(winner) == 1
        assert winner[0].replica_id == 1
        assert winner[0].role == "hedge"
        assert record.n_counted == 1
