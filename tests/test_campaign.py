"""Queueing model, knee location, and saturation campaigns."""

import pytest

from repro.serving import (
    CampaignConfig,
    ClusterQueueingModel,
    ShardLoadModel,
    locate_knee,
    model_from_policy,
    pool_from_corpus,
    run_campaign,
    zipf_weights,
)


class TestZipfWeights:
    def test_normalized_and_decreasing(self):
        weights = zipf_weights(20, 0.9)
        assert weights.sum() == pytest.approx(1.0)
        assert all(a > b for a, b in zip(weights, weights[1:]))

    def test_zero_exponent_is_uniform(self):
        weights = zipf_weights(4, 0.0)
        assert all(w == pytest.approx(0.25) for w in weights)


class TestLocateKnee:
    def test_interpolates_threshold_crossing(self):
        offered = [100.0, 200.0, 300.0]
        goodput = [100.0, 200.0, 240.0]  # ratios 1.0, 1.0, 0.8
        knee = locate_knee(offered, goodput, threshold=0.9)
        assert knee.saturated
        assert 200.0 < knee.knee_qps < 300.0
        # ratio drops 1.0 -> 0.8 between 200 and 300; 0.9 is halfway.
        assert knee.knee_qps == pytest.approx(250.0)

    def test_never_crossing_returns_top_unsaturated(self):
        knee = locate_knee([10.0, 20.0], [10.0, 19.9], threshold=0.9)
        assert not knee.saturated
        assert knee.knee_qps == 20.0

    def test_first_point_already_saturated(self):
        knee = locate_knee([10.0, 20.0], [5.0, 6.0], threshold=0.9)
        assert knee.saturated
        assert knee.knee_qps == 10.0

    def test_validation(self):
        with pytest.raises(ValueError):
            locate_knee([], [])
        with pytest.raises(ValueError):
            locate_knee([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            locate_knee([1.0], [1.0], threshold=0.0)


class TestQueueingModel:
    def shard(self, sid, prob, mean, m2=None):
        return ShardLoadModel(
            shard_id=sid,
            selection_prob=prob,
            mean_service_ms=mean,
            second_moment_ms2=m2 if m2 is not None else mean * mean,
        )

    def test_saturation_is_bottleneck_capacity(self):
        model = ClusterQueueingModel(
            shards=(self.shard(0, 1.0, 2.0), self.shard(1, 0.5, 2.0)),
            overhead_ms=0.1,
        )
        # Shard 0: every query, 2 ms each -> 500 qps; shard 1 only half.
        assert model.bottleneck.shard_id == 0
        assert model.saturation_qps() == pytest.approx(500.0)

    def test_utilization_scales_linearly(self):
        model = ClusterQueueingModel(
            shards=(self.shard(0, 1.0, 2.0),), overhead_ms=0.0
        )
        assert model.utilization(250.0)[0] == pytest.approx(0.5)
        assert model.utilization(500.0)[0] == pytest.approx(1.0)

    def test_pk_wait_deterministic_service(self):
        # M/D/1: W = rho * S / (2 (1 - rho)); rho=0.5, S=2 -> W=1.
        model = ClusterQueueingModel(
            shards=(self.shard(0, 1.0, 2.0, m2=4.0),), overhead_ms=0.0
        )
        assert model.mean_wait_ms(250.0, 0) == pytest.approx(1.0)
        assert model.mean_wait_ms(500.0, 0) == float("inf")

    def test_mean_latency_adds_overhead_and_diverges(self):
        model = ClusterQueueingModel(
            shards=(self.shard(0, 1.0, 2.0, m2=4.0),), overhead_ms=0.5
        )
        assert model.mean_latency_ms(250.0) == pytest.approx(0.5 + 1.0 + 2.0)
        assert model.mean_latency_ms(600.0) == float("inf")

    def test_model_from_exhaustive_policy(self, unit_testbed):
        pool = pool_from_corpus(unit_testbed.corpus, n_distinct=30)
        weights = zipf_weights(len(pool), 0.9)
        model = model_from_policy(
            unit_testbed.cluster,
            pool,
            weights.tolist(),
            unit_testbed.make_policy("exhaustive"),
        )
        # Exhaustive selects every shard for every query.
        assert all(
            s.selection_prob == pytest.approx(1.0) for s in model.shards
        )
        assert all(s.mean_service_ms > 0 for s in model.shards)
        assert all(
            s.second_moment_ms2 >= s.mean_service_ms**2 - 1e-9
            for s in model.shards
        )
        assert model.overhead_ms >= 2 * unit_testbed.cluster.network.delay_ms()
        assert 0 < model.saturation_qps() < float("inf")

    def test_model_from_policy_validates_weights(self, unit_testbed):
        pool = pool_from_corpus(unit_testbed.corpus, n_distinct=5)
        with pytest.raises(ValueError):
            model_from_policy(
                unit_testbed.cluster, pool, [1.0],
                unit_testbed.make_policy("exhaustive"),
            )
        with pytest.raises(ValueError):
            model_from_policy(
                unit_testbed.cluster, pool, [0.0] * len(pool),
                unit_testbed.make_policy("exhaustive"),
            )


class TestCampaignConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            CampaignConfig(arrival="fractal")
        with pytest.raises(ValueError):
            CampaignConfig(queries_per_point=0)
        with pytest.raises(ValueError):
            CampaignConfig(qps_grid=(), grid_fractions=())
        with pytest.raises(ValueError):
            CampaignConfig(qps_grid=(-5.0,))
        with pytest.raises(ValueError):
            CampaignConfig(goodput_threshold=1.5)
        with pytest.raises(ValueError):
            CampaignConfig(cache_capacity=-1)


class TestRunCampaign:
    def test_sweep_locates_knee_near_model(self, unit_testbed):
        """A fraction grid straddling the prediction saturates and agrees.

        The tolerance here is the same gate CI enforces on the full
        benchmark; at 400 queries/point the knee lands well inside it.
        """
        pool = pool_from_corpus(unit_testbed.corpus, n_distinct=40)
        result = run_campaign(
            unit_testbed.cluster,
            lambda: unit_testbed.make_policy("exhaustive"),
            pool,
            CampaignConfig(
                grid_fractions=(0.5, 0.9, 1.1, 1.5),
                queries_per_point=400,
                seed=3,
            ),
        )
        assert len(result.points) == 4
        assert result.total_queries == 1600
        assert result.knee.saturated
        assert result.knee_within(0.25)
        # Below the knee the cluster keeps up; far above it cannot.
        assert result.points[0].goodput_ratio > 0.95
        assert result.points[-1].goodput_ratio < 0.95
        # Latency and power move the right way along the sweep.
        assert (
            result.points[-1].mean_latency_ms > result.points[0].mean_latency_ms
        )
        assert (
            result.points[-1].max_core_utilization
            >= result.points[0].max_core_utilization
        )

    def test_explicit_grid_and_snapshot(self, unit_testbed):
        pool = pool_from_corpus(unit_testbed.corpus, n_distinct=20)
        result = run_campaign(
            unit_testbed.cluster,
            lambda: unit_testbed.make_policy("exhaustive"),
            pool,
            CampaignConfig(qps_grid=(60.0, 30.0), queries_per_point=100),
        )
        # Grid is swept sorted ascending regardless of input order.
        assert [p.offered_qps for p in result.points] == [30.0, 60.0]
        snap = result.snapshot()
        assert snap["policy"] == "exhaustive"
        assert len(snap["points"]) == 2
        assert snap["model"]["saturation_qps"] == result.predicted_knee_qps
        for point in snap["points"]:
            assert point["completed"] + point["shed"] == point["offered_queries"]

    def test_points_replay_deterministically(self, unit_testbed):
        pool = pool_from_corpus(unit_testbed.corpus, n_distinct=20)
        config = CampaignConfig(qps_grid=(50.0,), queries_per_point=120, seed=9)

        def sweep():
            return run_campaign(
                unit_testbed.cluster,
                lambda: unit_testbed.make_policy("exhaustive"),
                pool,
                config,
            )

        first, second = sweep(), sweep()
        assert first.points[0].snapshot() == second.points[0].snapshot()

    def test_on_point_callback_sees_every_point(self, unit_testbed):
        pool = pool_from_corpus(unit_testbed.corpus, n_distinct=20)
        seen = []
        run_campaign(
            unit_testbed.cluster,
            lambda: unit_testbed.make_policy("exhaustive"),
            pool,
            CampaignConfig(qps_grid=(40.0, 80.0), queries_per_point=80),
            on_point=seen.append,
        )
        assert [p.offered_qps for p in seen] == [40.0, 80.0]
