"""Fixture-driven self-tests for the simlint static analyzer.

Every rule gets at least one known-bad snippet it must fire on and one
known-clean snippet it must stay silent on; plus engine-level coverage
for pragma suppression, the content-hash cache, the baseline round-trip,
and a meta-test asserting the tree as committed is lint-clean.
"""

from pathlib import Path

import pytest

from repro.analysis import (
    Baseline,
    Finding,
    LintEngine,
    all_rules,
    analysis_source_digest,
    get_rules,
    module_path_of,
    parse_pragmas,
    rules_signature,
    run_lint,
)

REPO_ROOT = Path(__file__).resolve().parents[1]

RULE_IDS = {
    "DET-RNG", "DET-CLOCK", "DET-ORDER", "FLOAT-ORDER",
    "TEL-BIND", "MUT-DEFAULT", "PAR-SHARED", "PAR-PICKLE",
    "DET-CLOCK-FLOW", "DET-RNG-FLOW", "PAR-PICKLE-FLOW", "ARCH-LAYER",
}


def lint_snippet(tmp_path, source, module_path="core/snippet.py", rules=None):
    """Write ``source`` at ``repro/<module_path>`` and lint it."""
    target = tmp_path / "repro" / module_path
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source)
    engine = LintEngine(
        root=tmp_path,
        rules=get_rules(rules) if rules else (),
        cache_path=None,
    )
    return engine.run([target])


def rule_hits(report, rule_id):
    return [f for f in report.findings if f.rule == rule_id]


class TestRegistry:
    def test_all_rules_registered(self):
        assert {rule.id for rule in all_rules()} >= RULE_IDS

    def test_rules_have_docs(self):
        for rule in all_rules():
            assert rule.summary, rule.id
            assert rule.rationale, rule.id

    def test_unknown_rule_rejected(self):
        with pytest.raises(KeyError, match="NO-SUCH-RULE"):
            get_rules(["NO-SUCH-RULE"])

    def test_module_path_of(self):
        assert module_path_of("src/repro/core/budget.py") == "core/budget.py"
        assert module_path_of("repro/retrieval/kernels.py") == "retrieval/kernels.py"
        assert module_path_of("elsewhere/thing.py") == "elsewhere/thing.py"


class TestDetRng:
    def test_fires_on_global_random(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "import random\n"
            "def jitter():\n"
            "    return random.random() + random.randint(0, 3)\n",
        )
        assert len(rule_hits(report, "DET-RNG")) == 2

    def test_fires_on_unseeded_default_rng(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "import numpy as np\n"
            "rng = np.random.default_rng()\n",
        )
        hits = rule_hits(report, "DET-RNG")
        assert len(hits) == 1 and "seed" in hits[0].message

    def test_fires_on_numpy_global_state(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "import numpy as np\n"
            "np.random.seed(0)\n"
            "x = np.random.rand(3)\n",
        )
        assert len(rule_hits(report, "DET-RNG")) == 2

    def test_clean_on_seeded_rngs(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "import random\n"
            "import numpy as np\n"
            "r = random.Random(7)\n"
            "rng = np.random.default_rng(3)\n"
            "def draw(rng):\n"
            "    return rng.normal(size=4)\n",
        )
        assert not rule_hits(report, "DET-RNG")


class TestDetClock:
    def test_fires_on_wall_clock(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "import time\n"
            "import datetime\n"
            "t = time.time()\n"
            "n = datetime.datetime.now()\n",
            module_path="cluster/engine2.py",
        )
        assert len(rule_hits(report, "DET-CLOCK")) == 2

    def test_fires_on_bare_import(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "from time import perf_counter\n"
            "t0 = perf_counter()\n",
        )
        assert len(rule_hits(report, "DET-CLOCK")) == 1

    def test_clean_in_allowlisted_modules(self, tmp_path):
        source = "import time\nt = time.perf_counter()\n"
        for module in (
            "telemetry/trace.py",
            "retrieval/executor.py",
            "experiments/bench_anything.py",
        ):
            report = lint_snippet(tmp_path, source, module_path=module)
            assert not rule_hits(report, "DET-CLOCK"), module

    def test_clean_on_sim_clock(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "def handle(sim):\n"
            "    return sim.now + 1.0\n",
        )
        assert not rule_hits(report, "DET-CLOCK")


class TestDetOrder:
    def test_fires_on_set_iteration(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "def merge(shards):\n"
            "    out = []\n"
            "    for s in set(shards):\n"
            "        out.append(s)\n"
            "    return out\n",
            module_path="retrieval/merge2.py",
        )
        assert len(rule_hits(report, "DET-ORDER")) == 1

    def test_fires_on_keys_view_and_comprehension(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "def collect(table):\n"
            "    ids = [k for k in table.keys()]\n"
            "    seen = {x for x in frozenset(ids)}\n"
            "    return ids, seen\n",
            module_path="cluster/collect.py",
        )
        assert len(rule_hits(report, "DET-ORDER")) == 2

    def test_fires_through_transparent_wrappers(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "def order(items):\n"
            "    return [x for x in list(set(items))]\n",
            module_path="core/order.py",
        )
        assert len(rule_hits(report, "DET-ORDER")) == 1

    def test_clean_when_sorted(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "def merge(shards, table):\n"
            "    out = [s for s in sorted(set(shards))]\n"
            "    for k in sorted(table.keys()):\n"
            "        out.append(k)\n"
            "    return out\n",
            module_path="retrieval/merge2.py",
        )
        assert not rule_hits(report, "DET-ORDER")

    def test_out_of_scope_module_not_checked(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "def tags(xs):\n"
            "    return [x for x in set(xs)]\n",
            module_path="workloads/tags.py",
        )
        assert not rule_hits(report, "DET-ORDER")


class TestFloatOrder:
    def test_fires_on_builtin_sum_in_kernels(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "def upper_bound(scores):\n"
            "    return sum(scores)\n",
            module_path="retrieval/kernels.py",
        )
        assert len(rule_hits(report, "FLOAT-ORDER")) == 1

    def test_fires_on_np_sum_in_arena(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "import numpy as np\n"
            "def total(col):\n"
            "    return np.sum(col)\n",
            module_path="index/arena.py",
        )
        assert len(rule_hits(report, "FLOAT-ORDER")) == 1

    def test_clean_on_explicit_loop(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "def upper_bound(scores):\n"
            "    acc = 0.0\n"
            "    for s in scores:\n"
            "        acc += float(s)\n"
            "    return acc\n",
            module_path="retrieval/kernels.py",
        )
        assert not rule_hits(report, "FLOAT-ORDER")

    def test_sum_outside_kernel_scope_not_checked(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "def total(xs):\n"
            "    return sum(xs)\n",
            module_path="metrics/summary2.py",
        )
        assert not rule_hits(report, "FLOAT-ORDER")


TEL_BIND_BAD = """\
def run_trace(cluster, telemetry, NO_TELEMETRY):
    cluster.executor.bind_telemetry(telemetry)
    return cluster.replay()
"""

TEL_BIND_CLEAN = """\
def run_trace(cluster, telemetry, NO_TELEMETRY):
    cluster.executor.bind_telemetry(telemetry)
    try:
        return cluster.replay()
    finally:
        cluster.executor.bind_telemetry(NO_TELEMETRY)
"""

TEL_BIND_DELEGATION = """\
class Stack:
    def bind_telemetry(self, telemetry):
        for child in self.children:
            child.bind_telemetry(telemetry)
"""


class TestTelBind:
    def test_fires_without_finally(self, tmp_path):
        report = lint_snippet(tmp_path, TEL_BIND_BAD)
        assert len(rule_hits(report, "TEL-BIND")) == 1

    def test_clean_with_finally_restore(self, tmp_path):
        report = lint_snippet(tmp_path, TEL_BIND_CLEAN)
        assert not rule_hits(report, "TEL-BIND")

    def test_delegating_binder_exempt(self, tmp_path):
        report = lint_snippet(tmp_path, TEL_BIND_DELEGATION)
        assert not rule_hits(report, "TEL-BIND")


class TestMutDefault:
    def test_fires_on_literal_defaults(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "def collect(x, acc=[]):\n"
            "    acc.append(x)\n"
            "    return acc\n"
            "def config(opts={}):\n"
            "    return opts\n",
        )
        assert len(rule_hits(report, "MUT-DEFAULT")) == 2

    def test_fires_on_factory_and_kwonly(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "from collections import defaultdict\n"
            "def group(*, table=defaultdict(list)):\n"
            "    return table\n",
        )
        assert len(rule_hits(report, "MUT-DEFAULT")) == 1

    def test_clean_on_none_default(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "def collect(x, acc=None):\n"
            "    acc = [] if acc is None else acc\n"
            "    acc.append(x)\n"
            "    return acc\n",
        )
        assert not rule_hits(report, "MUT-DEFAULT")


PAR_SHARED_BAD = """\
def fan_out(pool, tasks):
    results = []
    def worker(task):
        results.append(task())
    for task in tasks:
        pool.submit(worker, task)
    return results
"""

PAR_SHARED_LOCKED = """\
import threading
def fan_out(pool, tasks):
    results = []
    lock = threading.Lock()
    def worker(task):
        value = task()
        with lock:
            results.append(value)
    for task in tasks:
        pool.submit(worker, task)
    return results
"""

PAR_SHARED_PURE = """\
def fan_out(pool, tasks):
    futures = [pool.submit(lambda t=task: t()) for task in tasks]
    return [f.result() for f in futures]
"""

PAR_SHARED_NO_EXECUTOR = """\
def serial(tasks):
    results = []
    def worker(task):
        results.append(task())
    for task in tasks:
        worker(task)
    return results
"""


PAR_PICKLE_LAMBDA = """\
def fan_out(process_pool, searchers, query):
    futures = [
        process_pool.submit(lambda s=searcher: s.search(query))
        for searcher in searchers
    ]
    return [f.result() for f in futures]
"""

PAR_PICKLE_NESTED = """\
def fan_out(process_executor, tasks):
    def worker(task):
        return task()
    return process_executor.map([worker for _ in tasks])
"""

PAR_PICKLE_DESCRIPTOR = """\
def fan_out(process_pool, tasks):
    futures = [process_pool.submit(run_task, task) for task in tasks]
    return [f.result() for f in futures]


def run_task(task):
    return task()
"""

PAR_PICKLE_THREAD_POOL = """\
def fan_out(thread_pool, tasks):
    futures = [thread_pool.submit(lambda t=task: t()) for task in tasks]
    return [f.result() for f in futures]
"""

PAR_PICKLE_DIRECT_CTOR = """\
from concurrent.futures import ProcessPoolExecutor


def fan_out(tasks):
    with ProcessPoolExecutor(4) as pool:
        return list(ProcessPoolExecutor(4).map(lambda t: t(), tasks))
"""


class TestParPickle:
    def test_fires_on_lambda(self, tmp_path):
        report = lint_snippet(tmp_path, PAR_PICKLE_LAMBDA)
        assert len(rule_hits(report, "PAR-PICKLE")) == 1

    def test_fires_on_nested_function(self, tmp_path):
        report = lint_snippet(tmp_path, PAR_PICKLE_NESTED)
        assert len(rule_hits(report, "PAR-PICKLE")) == 1

    def test_clean_module_level_callable(self, tmp_path):
        report = lint_snippet(tmp_path, PAR_PICKLE_DESCRIPTOR)
        assert not rule_hits(report, "PAR-PICKLE")

    def test_thread_pools_exempt(self, tmp_path):
        report = lint_snippet(tmp_path, PAR_PICKLE_THREAD_POOL)
        assert not rule_hits(report, "PAR-PICKLE")

    def test_fires_on_direct_constructor_receiver(self, tmp_path):
        report = lint_snippet(tmp_path, PAR_PICKLE_DIRECT_CTOR)
        assert len(rule_hits(report, "PAR-PICKLE")) == 1


class TestParShared:
    def test_fires_on_shared_mutation(self, tmp_path):
        report = lint_snippet(tmp_path, PAR_SHARED_BAD)
        assert len(rule_hits(report, "PAR-SHARED")) == 1

    def test_clean_under_lock(self, tmp_path):
        report = lint_snippet(tmp_path, PAR_SHARED_LOCKED)
        assert not rule_hits(report, "PAR-SHARED")

    def test_clean_pure_closures(self, tmp_path):
        report = lint_snippet(tmp_path, PAR_SHARED_PURE)
        assert not rule_hits(report, "PAR-SHARED")

    def test_serial_helper_not_flagged(self, tmp_path):
        report = lint_snippet(tmp_path, PAR_SHARED_NO_EXECUTOR)
        assert not rule_hits(report, "PAR-SHARED")


class TestPragmas:
    def test_parse(self):
        pragmas = parse_pragmas(
            [
                "x = 1",
                "y = wall()  # simlint: disable=DET-CLOCK -- measurement",
                "z = f()  # simlint: disable=DET-RNG,MUT-DEFAULT",
                "w = g()  # simlint: disable=all",
            ]
        )
        assert pragmas == {
            2: frozenset({"DET-CLOCK"}),
            3: frozenset({"DET-RNG", "MUT-DEFAULT"}),
            4: frozenset({"ALL"}),
        }

    def test_suppresses_matching_rule_only(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "import random\n"
            "a = random.random()  # simlint: disable=DET-RNG -- fixture\n"
            "b = random.random()  # simlint: disable=DET-CLOCK -- wrong rule\n"
            "c = random.random()\n",
        )
        assert len(rule_hits(report, "DET-RNG")) == 2
        assert report.pragma_suppressed == 1

    def test_disable_all(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "import random\n"
            "a = random.random()  # simlint: disable=all -- fixture\n",
        )
        assert not report.findings
        assert report.pragma_suppressed == 1

    def test_pragma_on_any_line_of_multiline_statement(self, tmp_path):
        # The finding anchors to the call line; the pragma sits on the
        # closing-paren line.  Both live inside one statement span, so
        # the pragma governs the whole statement.
        report = lint_snippet(
            tmp_path,
            "import random\n"
            "x = random.random(\n"
            ")  # simlint: disable=DET-RNG -- fixture\n",
        )
        assert not rule_hits(report, "DET-RNG")
        assert report.pragma_suppressed == 1

    def test_pragma_covers_whole_parenthesized_statement(self, tmp_path):
        # One pragma inside a bracketed literal suppresses every finding
        # the statement produces — the span is the statement, not a line.
        report = lint_snippet(
            tmp_path,
            "import random\n"
            "vals = [\n"
            "    random.random(),  # simlint: disable=DET-RNG -- fixture\n"
            "    random.random(),\n"
            "]\n",
        )
        assert not rule_hits(report, "DET-RNG")
        assert report.pragma_suppressed == 2

    def test_pragma_on_decorated_def_header(self, tmp_path):
        # A compound statement's pragma span is the *header* only
        # (decorators through the def line), so a pragma on either the
        # decorator or the signature suppresses a header finding.
        for pragma_line in (
            "@functools.lru_cache  # simlint: disable=MUT-DEFAULT -- fixture\n"
            "def config(opts={}):\n",
            "@functools.lru_cache\n"
            "def config(opts={}):  # simlint: disable=MUT-DEFAULT -- fixture\n",
        ):
            report = lint_snippet(
                tmp_path,
                "import functools\n" + pragma_line + "    return opts\n",
            )
            assert not rule_hits(report, "MUT-DEFAULT"), pragma_line
            assert report.pragma_suppressed == 1

    def test_body_pragma_does_not_leak_to_header(self, tmp_path):
        # A pragma on a body statement has its own (body-statement) span;
        # it must not swallow findings anchored to the def header.
        report = lint_snippet(
            tmp_path,
            "def config(opts={}):\n"
            "    return opts  # simlint: disable=MUT-DEFAULT -- wrong place\n",
        )
        assert len(rule_hits(report, "MUT-DEFAULT")) == 1
        assert report.pragma_suppressed == 0

    def test_unknown_rule_id_warns_without_failing(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "x = 1  # simlint: disable=DET-RNGG -- typo\n",
        )
        assert not report.findings
        assert len(report.warnings) == 1
        warning = report.warnings[0]
        assert "DET-RNGG" in warning.message
        assert warning.line == 1
        assert report.exit_code() == 0

    def test_known_rule_and_all_do_not_warn(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "import random\n"
            "a = random.random()  # simlint: disable=DET-RNG -- fixture\n"
            "b = random.random()  # simlint: disable=all -- fixture\n",
        )
        assert not report.warnings


class TestRulesSignature:
    def test_digest_is_stable_and_tracks_source_edits(self, tmp_path):
        pkg = tmp_path / "analysis"
        pkg.mkdir()
        (pkg / "rules.py").write_text("THRESHOLD = 1\n")
        first = analysis_source_digest(package_dir=pkg)
        assert first == analysis_source_digest(package_dir=pkg)

        (pkg / "rules.py").write_text("THRESHOLD = 2\n")
        assert analysis_source_digest(package_dir=pkg) != first

        # adding a file changes the digest too (the hash walks the dir)
        (pkg / "extra.py").write_text("")
        second = analysis_source_digest(package_dir=pkg)
        assert second != first

    def test_signature_embeds_source_digest(self):
        signature = rules_signature(all_rules())
        assert signature.startswith(analysis_source_digest() + ":")
        # a different rule subset yields a different signature
        assert signature != rules_signature(get_rules(["DET-RNG"]))

    def test_signature_mismatch_drops_cache(self, tmp_path):
        from repro.analysis.cache import ResultCache, content_hash

        source_hash = content_hash("x = 1\n")
        entry = {"hash": source_hash, "findings": []}
        cache = ResultCache(tmp_path / "c.json", rules_signature="sig-a")
        cache.put_entry("repro/core/m.py", entry)
        cache.save()

        stale = ResultCache(tmp_path / "c.json", rules_signature="sig-b")
        assert stale.get_entry("repro/core/m.py", source_hash) is None

        fresh = ResultCache(tmp_path / "c.json", rules_signature="sig-a")
        assert fresh.get_entry("repro/core/m.py", source_hash) == entry


class TestCache:
    def make_engine(self, tmp_path):
        return LintEngine(
            root=tmp_path, cache_path=tmp_path / ".simlint-cache.json"
        )

    def test_warm_run_hits_cache_with_same_findings(self, tmp_path):
        target = tmp_path / "repro" / "core" / "mod.py"
        target.parent.mkdir(parents=True)
        target.write_text("import random\nx = random.random()\n")

        cold = self.make_engine(tmp_path).run([target])
        assert cold.cache_hits == 0 and len(cold.findings) == 1

        warm = self.make_engine(tmp_path).run([target])
        assert warm.cache_hits == 1
        assert warm.findings == cold.findings

    def test_content_change_invalidates(self, tmp_path):
        target = tmp_path / "repro" / "core" / "mod.py"
        target.parent.mkdir(parents=True)
        target.write_text("import random\nx = random.random()\n")
        self.make_engine(tmp_path).run([target])

        target.write_text("import random\nr = random.Random(3)\n")
        warm = self.make_engine(tmp_path).run([target])
        assert warm.cache_hits == 0
        assert not warm.findings

    def test_rule_subset_change_invalidates(self, tmp_path):
        target = tmp_path / "repro" / "core" / "mod.py"
        target.parent.mkdir(parents=True)
        target.write_text("import random\nx = random.random()\n")
        self.make_engine(tmp_path).run([target])

        engine = LintEngine(
            root=tmp_path,
            rules=get_rules(["MUT-DEFAULT"]),
            cache_path=tmp_path / ".simlint-cache.json",
        )
        report = engine.run([target])
        assert report.cache_hits == 0
        assert not report.findings


class TestBaseline:
    def test_round_trip_suppresses_then_surfaces_new(self, tmp_path):
        target = tmp_path / "repro" / "core" / "mod.py"
        target.parent.mkdir(parents=True)
        target.write_text("import random\nx = random.random()\n")

        first = LintEngine(root=tmp_path, cache_path=None).run([target])
        assert len(first.findings) == 1

        baseline_path = tmp_path / "simlint-baseline.json"
        Baseline.from_findings(first.findings).save(baseline_path)
        reloaded = Baseline.load(baseline_path)
        assert len(reloaded) == 1

        engine = LintEngine(root=tmp_path, cache_path=None, baseline=reloaded)
        second = engine.run([target])
        assert not second.findings
        assert second.baseline_suppressed == 1

        # A *new* identical violation on another line is not grandfathered:
        # the multiset budget covers exactly one occurrence.
        target.write_text(
            "import random\nx = random.random()\ny = random.random()\n"
        )
        third = LintEngine(
            root=tmp_path, cache_path=None, baseline=reloaded
        ).run([target])
        assert len(third.findings) == 1
        assert third.baseline_suppressed == 1

    def test_stale_entries_reported(self, tmp_path):
        finding = Finding(
            path="repro/core/mod.py", line=2, col=0,
            rule="DET-RNG", message="gone",
        )
        baseline = Baseline.from_findings([finding])
        assert baseline.stale_entries([]) == [finding.fingerprint()]

    def test_missing_baseline_is_empty(self, tmp_path):
        assert len(Baseline.load(tmp_path / "nope.json")) == 0


class TestErrors:
    def test_syntax_error_is_error_not_finding(self, tmp_path):
        target = tmp_path / "repro" / "core" / "broken.py"
        target.parent.mkdir(parents=True)
        target.write_text("def broken(:\n")
        report = LintEngine(root=tmp_path, cache_path=None).run([target])
        assert not report.findings
        assert len(report.errors) == 1
        assert report.exit_code() == 2

    def test_missing_path_raises(self, tmp_path):
        engine = LintEngine(root=tmp_path, cache_path=None)
        with pytest.raises(FileNotFoundError):
            engine.run([tmp_path / "does-not-exist"])


class TestTreeIsClean:
    def test_repro_lint_src_repro_exits_zero(self, tmp_path):
        """The tree as committed carries no findings and an empty baseline."""
        from repro.cli import main

        assert (REPO_ROOT / "simlint-baseline.json").exists()
        assert Baseline.load(REPO_ROOT / "simlint-baseline.json").counts == {}
        code = main(
            [
                "lint",
                str(REPO_ROOT / "src" / "repro"),
                "--root", str(REPO_ROOT),
                "--cache", str(tmp_path / "cache.json"),
            ]
        )
        assert code == 0

    def test_run_lint_api_matches(self, tmp_path):
        report = run_lint(
            [REPO_ROOT / "src" / "repro"],
            root=REPO_ROOT,
            cache_path=tmp_path / "cache.json",
        )
        assert report.clean
        assert report.files_scanned > 100
