"""Unit tests for the telemetry plane: tracer, metrics, disabled path."""

import numpy as np
import pytest

from repro.cluster.events import Simulator
from repro.telemetry import (
    NO_TELEMETRY,
    NULL_SPAN,
    MetricsRegistry,
    P2Quantile,
    StreamingHistogram,
    Telemetry,
    Tracer,
)


class TestTracer:
    def test_sync_spans_nest_and_record_path(self):
        tracer = Tracer()
        with tracer.span("outer", track="t") as outer:
            with tracer.span("inner", track="t") as inner:
                assert inner.path == ("outer", "inner")
                assert inner.depth == 1
        assert outer.path == ("outer",)
        assert outer.finished and inner.finished
        assert tracer.open_spans() == []
        # Finish order: inner closes first.
        assert [s.name for s in tracer.spans] == ["inner", "outer"]

    def test_sim_clock_binding(self):
        tracer = Tracer()
        now = {"t": 10.0}
        tracer.bind_clock(lambda: now["t"])
        span = tracer.span("work", track="t")
        now["t"] = 25.5
        span.finish()
        assert span.sim_begin_ms == 10.0
        assert span.sim_end_ms == 25.5
        assert span.sim_ms == pytest.approx(15.5)
        assert span.wall_ms >= 0.0

    def test_finish_is_idempotent(self):
        tracer = Tracer()
        span = tracer.span("x")
        span.finish()
        end = span.sim_end_ms
        span.finish()
        assert span.sim_end_ms == end
        assert len(tracer.spans) == 1

    def test_async_spans_overlap_without_stack(self):
        tracer = Tracer()
        a = tracer.async_span("query", track="agg", qid=1)
        b = tracer.async_span("query", track="agg", qid=2)
        a.finish()
        b.finish()
        assert [phase for phase, _ in tracer.async_log] == ["b", "b", "e", "e"]
        assert tracer.open_spans() == []  # async spans never enter stacks

    def test_instant_is_prefinished(self):
        tracer = Tracer()
        mark = tracer.instant("abort", track="isn.0", shard=0)
        assert mark.finished
        assert mark.sim_ms == 0.0
        assert ("I", mark) in tracer.track_log("isn.0")

    def test_track_log_balanced(self):
        tracer = Tracer()
        with tracer.span("a", track="t"):
            with tracer.span("b", track="t"):
                pass
        kinds = [kind for kind, _ in tracer.track_log("t")]
        assert kinds == ["B", "B", "E", "E"]

    def test_disabled_tracer_returns_shared_null_span(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("x") is NULL_SPAN
        assert tracer.async_span("x") is NULL_SPAN
        assert tracer.instant("x") is NULL_SPAN
        assert tracer.spans == []
        with tracer.span("y"):  # context-manager protocol still works
            pass

    def test_clear_resets_everything(self):
        tracer = Tracer()
        with tracer.span("a", track="t"):
            pass
        tracer.clear()
        assert tracer.spans == []
        assert tracer.tracks == []


class TestMetrics:
    def test_counter(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.add()
        counter.add(4.5)
        assert counter.value == 5.5
        assert registry.counter("c") is counter  # get-or-create
        with pytest.raises(ValueError):
            counter.add(-1)

    def test_gauge_tracks_extremes(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        gauge.set(3.0)
        gauge.set(-1.0)
        gauge.set(2.0)
        assert gauge.value == 2.0
        assert gauge.min == -1.0
        assert gauge.max == 3.0

    def test_type_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")
        with pytest.raises(TypeError):
            registry.histogram("x")

    def test_disabled_registry_returns_null_instruments(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("a")
        counter.add(100)
        assert counter.value == 0
        assert registry.counter("b") is counter  # shared singleton
        assert len(registry) == 0
        registry.histogram("h").observe(1.0)
        registry.gauge("g").set(5.0)
        assert registry.snapshot() == {}


class TestP2Quantile:
    def test_exact_below_five_observations(self):
        q = P2Quantile(0.5)
        for value in (5.0, 1.0, 3.0):
            q.observe(value)
        assert q.value == 3.0

    @pytest.mark.parametrize("p", [0.5, 0.95, 0.99])
    def test_tracks_exponential_distribution(self, p):
        rng = np.random.default_rng(7)
        samples = rng.exponential(scale=10.0, size=20_000)
        q = P2Quantile(p)
        for value in samples:
            q.observe(float(value))
        exact = float(np.quantile(samples, p))
        assert q.value == pytest.approx(exact, rel=0.05)

    def test_histogram_percentile_forms(self):
        hist = StreamingHistogram("h")
        for value in range(1, 101):
            hist.observe(float(value))
        assert hist.count == 100
        assert hist.sum == pytest.approx(5050.0)
        assert hist.mean == pytest.approx(50.5)
        # Both the 0-1 and 0-100 spellings are accepted.
        assert hist.percentile(50) == hist.percentile(0.5)
        assert hist.percentile(95) == pytest.approx(95.0, rel=0.1)

    def test_histogram_no_sample_retention(self):
        hist = StreamingHistogram("h")
        for value in range(10_000):
            hist.observe(float(value + 1))
        # Streaming: state is buckets + P-squared markers, not samples.
        assert not hasattr(hist, "samples")
        snapshot = hist.snapshot()
        assert snapshot["count"] == 10_000

    def test_histogram_out_of_range(self):
        hist = StreamingHistogram("h", lo=1.0, hi=100.0)
        hist.observe(0.001)   # underflow bucket
        hist.observe(1e6)     # overflow bucket
        assert hist.count == 2


class TestTelemetrySession:
    def test_no_telemetry_is_disabled_everywhere(self):
        assert not NO_TELEMETRY.enabled
        assert NO_TELEMETRY.tracer.span("x") is NULL_SPAN
        NO_TELEMETRY.metrics.counter("c").add()
        assert len(NO_TELEMETRY.metrics) == 0

    def test_clear_keeps_session_reusable(self):
        telemetry = Telemetry()
        with telemetry.tracer.span("a"):
            pass
        telemetry.metrics.counter("c").add()
        telemetry.clear()
        assert telemetry.tracer.spans == []
        assert len(telemetry.metrics) == 0
        assert telemetry.enabled


class TestSimulatorClampPolicy:
    """Satellite: the documented ``schedule_at`` past-time clamp."""

    def test_past_time_runs_now_and_counts(self):
        telemetry = Telemetry()
        sim = Simulator(telemetry)
        fired = []
        sim.schedule(
            5.0,
            lambda: sim.schedule_at(1.0, lambda: fired.append(sim.now)),
        )
        sim.run()
        assert fired == [5.0]  # clamped to "now", not silently dropped
        assert sim.clamped_schedules == 1
        assert telemetry.metrics.get("sim.schedule_at.clamped").value == 1

    def test_clamp_counted_without_telemetry(self):
        sim = Simulator()
        sim.schedule(2.0, lambda: sim.schedule_at(0.5, lambda: None))
        sim.run()
        assert sim.clamped_schedules == 1

    def test_future_times_never_clamp(self):
        telemetry = Telemetry()
        sim = Simulator(telemetry)
        sim.schedule_at(3.0, lambda: None)
        sim.schedule_at(0.0, lambda: None)  # exactly now: not a clamp
        sim.run()
        assert sim.clamped_schedules == 0
        # Registered eagerly at construction, but never incremented.
        assert telemetry.metrics.get("sim.schedule_at.clamped").value == 0

    def test_clamped_callback_runs_after_existing_same_instant_events(self):
        sim = Simulator()
        order = []
        sim.schedule(5.0, lambda: sim.schedule_at(1.0, lambda: order.append("late")))
        sim.schedule(5.0, lambda: order.append("on-time"))
        sim.run()
        assert order == ["on-time", "late"]
