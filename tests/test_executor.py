"""The shard fan-out executors and their determinism guarantee.

The contract under test: running any workload through ``SerialExecutor``,
``ParallelExecutor`` or ``BatchExecutor`` — at any worker count, under any
thread interleaving — produces **byte-identical** outputs: merged top-k
results, aggregator cache stats, and full ``RunResult.records``.
"""

from __future__ import annotations

import random
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.cache import ResultCache
from repro.cluster.engine import RunResult, SearchCluster
from repro.policies.exhaustive import ExhaustivePolicy
from repro.retrieval import (
    BatchExecutor,
    DistributedSearcher,
    ParallelExecutor,
    Query,
    QueryTrace,
    SerialExecutor,
    make_executor,
    merge_results,
)
from repro.retrieval.executor import FanoutStats

WORKER_COUNTS = (1, 2, 8)


def make_trace(n_queries: int = 48, n_distinct: int = 16, seed: int = 7) -> QueryTrace:
    """A trace with hot repeats (exercises both memo layers)."""
    rng = random.Random(seed)
    distinct = [
        (f"t{rng.randint(0, 50)}", f"t{rng.randint(0, 50)}") for _ in range(n_distinct)
    ]
    queries = [
        Query(
            query_id=i,
            terms=tuple(dict.fromkeys(distinct[rng.randrange(n_distinct)])),
            arrival_time=i * 0.012,
        )
        for i in range(n_queries)
    ]
    return QueryTrace("executor-determinism", queries)


def run_fingerprint(run: RunResult) -> str:
    """Canonical byte-for-byte identity of everything a run produced."""
    lines = [run.policy_name, repr(run.cache_stats), repr(run.power)]
    for record in run.records:
        lines.append(
            "|".join(
                (
                    str(record.query.query_id),
                    repr(record.arrival_ms),
                    repr(record.latency_ms),
                    record.result.fingerprint(),
                    repr(record.decision),
                    repr(record.outcomes),
                    str(record.from_cache),
                )
            )
        )
    return "\n".join(lines)


# ---------------------------------------------------------------- unit level
class TestExecutorBasics:
    def test_make_executor_dispatch(self):
        assert isinstance(make_executor(None), SerialExecutor)
        assert isinstance(make_executor(1), SerialExecutor)
        parallel = make_executor(4)
        assert isinstance(parallel, ParallelExecutor)
        assert parallel.workers == 4
        parallel.close()

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            ParallelExecutor(0)

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_map_preserves_submission_order(self, workers):
        with make_executor(workers) as executor:
            results = executor.map([lambda i=i: i * i for i in range(40)])
        assert results == [i * i for i in range(40)]

    def test_map_propagates_task_errors(self):
        def boom():
            raise RuntimeError("task failed")

        with make_executor(4) as executor:
            with pytest.raises(RuntimeError, match="task failed"):
                executor.map([lambda: 1, boom, lambda: 3])

    def test_stats_recorded(self):
        with make_executor(3) as executor:
            executor.map([lambda: None] * 7)
            stats = executor.last_stats
        assert stats is not None
        assert stats.n_tasks == 7
        assert stats.workers == 3
        assert stats.wall_ms >= 0.0

    def test_close_is_idempotent_and_pool_recreated(self):
        executor = ParallelExecutor(2)
        assert executor.map([lambda: 1]) == [1]
        executor.close()
        executor.close()
        # A closed executor lazily re-creates its pool on next use.
        assert executor.map([lambda: 2]) == [2]
        executor.close()


class TestFanoutStats:
    def test_makespan_serial_equals_sum(self):
        stats = FanoutStats(task_ms=[3.0, 1.0, 2.0], workers=1)
        assert stats.critical_path_ms == pytest.approx(6.0)
        assert stats.modeled_speedup == pytest.approx(1.0)

    def test_makespan_even_split(self):
        stats = FanoutStats(task_ms=[1.0] * 16, workers=8)
        assert stats.critical_path_ms == pytest.approx(2.0)
        assert stats.modeled_speedup == pytest.approx(8.0)

    def test_makespan_bounded_by_largest_task(self):
        stats = FanoutStats(task_ms=[10.0, 1.0, 1.0, 1.0], workers=4)
        assert stats.critical_path_ms == pytest.approx(10.0)

    def test_makespan_empty(self):
        assert FanoutStats(workers=4).critical_path_ms == 0.0


# ------------------------------------------------------- searcher-level merge
class TestDistributedDeterminism:
    @pytest.fixture()
    def queries(self):
        rng = random.Random(11)
        return [
            Query(
                query_id=i,
                terms=tuple(
                    dict.fromkeys(f"t{rng.randint(0, 30)}" for _ in range(3))
                ),
            )
            for i in range(20)
        ]

    def test_search_identical_across_worker_counts(self, shards, queries):
        reference = None
        for workers in WORKER_COUNTS:
            with make_executor(workers) as executor:
                searcher = DistributedSearcher(shards, k=10, executor=executor)
                fingerprints = [searcher.search(q).fingerprint() for q in queries]
            if reference is None:
                reference = fingerprints
            else:
                assert fingerprints == reference

    def test_merge_is_completion_order_independent(self, shards, queries):
        searcher = DistributedSearcher(shards, k=10)
        for query in queries:
            per_shard = [s.search(query) for s in searcher.searchers]
            expected = merge_results(per_shard, 10).fingerprint()
            shuffled = list(per_shard)
            random.Random(query.query_id).shuffle(shuffled)
            assert merge_results(shuffled, 10).fingerprint() == expected

    @settings(max_examples=25, deadline=None)
    @given(order=st.permutations(list(range(4))))
    def test_merge_permutation_property(self, shards, order):
        query = Query(query_id=0, terms=("t1", "t2", "t3"))
        searcher = DistributedSearcher(shards, k=10)
        per_shard = [s.search(query) for s in searcher.searchers]
        expected = merge_results(per_shard, 10).fingerprint()
        permuted = [per_shard[i] for i in order]
        assert merge_results(permuted, 10).fingerprint() == expected

    def test_batch_prewarm_dedupes_and_makes_replay_hit_only(self, shards, queries):
        with BatchExecutor(4) as executor:
            searcher = DistributedSearcher(shards, k=10, executor=executor)
            n_tasks = executor.prewarm(searcher.searchers, queries + queries)
            distinct = len({q.terms for q in queries})
            assert n_tasks == distinct * len(shards)
            before = [s.cache_stats for s in searcher.searchers]
            for query in queries:
                searcher.search(query)
            after = [s.cache_stats for s in searcher.searchers]
        # Replay computed nothing new: every lookup was a memo hit.
        for b, a in zip(before, after):
            assert a.computations == b.computations
            assert a.hits >= b.hits + len(queries)


# ------------------------------------------------------------ full trace runs
class TestTraceDeterminism:
    @pytest.fixture(scope="class")
    def trace(self):
        return make_trace()

    def _run(self, shards, workers: int, trace: QueryTrace) -> tuple[str, str]:
        cluster = SearchCluster(shards, k=10, executor=make_executor(workers))
        try:
            run = cluster.run_trace(
                trace, ExhaustivePolicy(), cache=ResultCache(capacity=8)
            )
            return run_fingerprint(run), repr(run.cache_stats)
        finally:
            cluster.executor.close()

    def test_byte_identical_across_worker_counts(self, documents, trace):
        # Fresh shards per run: memo caches must start cold each time.
        from repro.index import build_shards, partition_topical
        from repro.text import WhitespaceAnalyzer

        fingerprints = {}
        for workers in WORKER_COUNTS:
            shards = build_shards(
                partition_topical(documents, 4), analyzer=WhitespaceAnalyzer()
            )
            fingerprints[workers] = self._run(shards, workers, trace)
        assert fingerprints[2] == fingerprints[1]
        assert fingerprints[8] == fingerprints[1]

    def test_prewarm_flag_does_not_change_outcomes(self, shards, trace):
        cluster = SearchCluster(shards, k=10)
        baseline = run_fingerprint(cluster.run_trace(trace, ExhaustivePolicy()))
        prewarmed = run_fingerprint(
            cluster.run_trace(trace, ExhaustivePolicy(), prewarm=True)
        )
        assert prewarmed == baseline

    def test_prewarm_counts_unique_work(self, shards, trace):
        cluster = SearchCluster(shards, k=10, executor=make_executor(2))
        try:
            n_tasks = cluster.prewarm_trace(trace)
            distinct = len({q.terms for q in trace})
            assert n_tasks == distinct * len(shards)
            # A second prewarm finds everything cached.
            assert cluster.prewarm_trace(trace) == 0
        finally:
            cluster.executor.close()
