"""Unit + property tests for ranking functions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scoring import BM25Similarity, LMDirichletSimilarity, TFIDFSimilarity

SIMS = [BM25Similarity(), TFIDFSimilarity(), LMDirichletSimilarity()]


class TestBM25:
    def test_score_increases_with_tf(self):
        sim = BM25Similarity()
        scores = sim.scores(np.array([1, 2, 5]), np.array([100, 100, 100]), 10, 1000, 100)
        assert scores[0] < scores[1] < scores[2]

    def test_score_decreases_with_doc_length(self):
        sim = BM25Similarity()
        scores = sim.scores(np.array([3, 3]), np.array([50, 500]), 10, 1000, 100)
        assert scores[0] > scores[1]

    def test_rare_terms_score_higher(self):
        sim = BM25Similarity()
        rare = sim.scores(np.array([2]), np.array([100]), 2, 1000, 100)
        common = sim.scores(np.array([2]), np.array([100]), 500, 1000, 100)
        assert rare[0] > common[0]

    def test_idf_positive_even_for_ubiquitous_terms(self):
        assert BM25Similarity().idf(1000, 1000) > 0

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            BM25Similarity(k1=-1)
        with pytest.raises(ValueError):
            BM25Similarity(b=1.5)


class TestLMDirichlet:
    def test_non_negative(self):
        sim = LMDirichletSimilarity()
        scores = sim.scores(np.array([1, 10]), np.array([100, 100]), 5, 1000, 100)
        assert (scores >= 0).all()

    def test_mu_validation(self):
        with pytest.raises(ValueError):
            LMDirichletSimilarity(mu=0)


class TestTFIDF:
    def test_sublinear_tf(self):
        sim = TFIDFSimilarity()
        scores = sim.scores(np.array([1, 2, 3]), np.array([100] * 3), 10, 1000, 100)
        # Unit tf increments add less and less score (1 + log tf).
        assert scores[1] - scores[0] > scores[2] - scores[1]


@pytest.mark.parametrize("sim", SIMS, ids=lambda s: type(s).__name__)
@settings(max_examples=150, deadline=None)
@given(
    tf=st.integers(1, 40),
    max_tf=st.integers(1, 40),
    dl=st.integers(1, 2000),
    df=st.integers(1, 900),
)
def test_upper_bound_is_admissible(sim, tf, max_tf, dl, df):
    """No posting with tf <= max_tf may out-score the analytic bound —
    the property MaxScore/WAND correctness rests on."""
    tf = min(tf, max_tf)
    n_docs, avg_dl = 1000, 120.0
    score = sim.scores(np.array([tf]), np.array([dl], dtype=float), df, n_docs, avg_dl)[0]
    bound = sim.upper_bound(max_tf, df, n_docs, avg_dl)
    assert score <= bound + 1e-9


@pytest.mark.parametrize("sim", SIMS, ids=lambda s: type(s).__name__)
def test_vectorized_matches_scalar_loop(sim):
    tfs = np.array([1, 3, 7, 2])
    dls = np.array([40.0, 90.0, 300.0, 10.0])
    batch = sim.scores(tfs, dls, 25, 500, 80.0)
    single = [
        sim.scores(np.array([tf]), np.array([dl]), 25, 500, 80.0)[0]
        for tf, dl in zip(tfs, dls)
    ]
    np.testing.assert_allclose(batch, single)
