"""Seed robustness: the paper's orderings are not one-seed accidents.

Builds two additional unit-scale testbeds with different corpus/trace
seeds and checks the headline orderings hold on each.  Slow-ish (~30 s),
but this is exactly the check a reviewer asks for first.
"""

import pytest

from repro.experiments import Scale, Testbed
from repro.metrics import summarize_run
from repro.workloads import CorpusConfig


def scaled(seed: int) -> Scale:
    base = Scale.unit()
    return Scale(
        n_shards=base.n_shards,
        corpus=CorpusConfig(
            n_docs=base.corpus.n_docs,
            vocab_size=base.corpus.vocab_size,
            n_topics=base.corpus.n_topics,
            topic_core_size=base.corpus.topic_core_size,
            mean_doc_length=base.corpus.mean_doc_length,
            seed=seed,
        ),
        n_training_queries=base.n_training_queries,
        quality_iterations=base.quality_iterations,
        latency_iterations=base.latency_iterations,
        trace_duration_s=base.trace_duration_s,
        trace_rate_qps=base.trace_rate_qps,
        trace_distinct=base.trace_distinct,
        seed=seed,
    )


@pytest.mark.parametrize("seed", [101, 202])
def test_orderings_hold_across_seeds(seed):
    testbed = Testbed.build(scaled(seed))
    trace = testbed.wikipedia_trace
    truth = testbed.truth_for(trace)
    summaries = {
        name: summarize_run(testbed.run(trace, name), truth, trace.name)
        for name in ("exhaustive", "taily", "rank_s", "cottage")
    }
    # The reproduction's core orderings, per EXPERIMENTS.md.
    assert summaries["cottage"].avg_latency_ms < summaries["exhaustive"].avg_latency_ms
    assert summaries["cottage"].avg_latency_ms < summaries["taily"].avg_latency_ms
    assert summaries["cottage"].p95_latency_ms < summaries["exhaustive"].p95_latency_ms
    assert summaries["cottage"].avg_precision > 0.75
    assert summaries["rank_s"].avg_precision < summaries["cottage"].avg_precision
    assert (
        summaries["cottage"].avg_selected_isns < summaries["taily"].avg_selected_isns
    )
    assert (
        summaries["cottage"].avg_docs_searched
        < summaries["exhaustive"].avg_docs_searched
    )
