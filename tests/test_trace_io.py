"""Tests for trace persistence."""

import pytest

from repro.workloads import TraceConfig, generate_trace, load_trace, save_trace


class TestTraceRoundtrip:
    def test_roundtrip_identical(self, tiny_corpus, tmp_path):
        trace = generate_trace(tiny_corpus, TraceConfig(duration_s=3.0))
        path = tmp_path / "trace.json"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.name == trace.name
        assert len(loaded) == len(trace)
        for a, b in zip(trace, loaded):
            assert a.query_id == b.query_id
            assert a.terms == b.terms
            assert a.arrival_time == b.arrival_time

    def test_replay_equivalence(self, tiny_corpus, tmp_path, shards):
        """A reloaded trace produces an identical simulated run."""
        from repro.cluster import SearchCluster
        from repro.policies import ExhaustivePolicy

        trace = generate_trace(
            tiny_corpus, TraceConfig(duration_s=2.0, arrival_rate_qps=20.0)
        )
        # Restrict to terms the fixture shards know; arrival times matter,
        # not the vocabulary, so reuse term tuples from the shard fixture.
        path = tmp_path / "trace.json"
        save_trace(trace, path)
        loaded = load_trace(path)
        cluster = SearchCluster(shards, k=5)
        a = cluster.run_trace(trace, ExhaustivePolicy())
        b = cluster.run_trace(loaded, ExhaustivePolicy())
        assert a.latencies_ms() == b.latencies_ms()

    def test_bad_format_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format_version": 99, "name": "x", "queries": []}')
        with pytest.raises(ValueError):
            load_trace(path)
