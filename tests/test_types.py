"""Validation tests for the shared cluster datatypes."""

import pytest

from repro.cluster.types import ClusterView, Decision, QueryRecord, ShardOutcome
from repro.retrieval import Query, SearchResult


class TestDecision:
    def test_minimal(self):
        decision = Decision(shard_ids=(0, 1))
        assert decision.time_budget_ms is None
        assert decision.frequency_overrides == {}

    def test_duplicate_shards_rejected(self):
        with pytest.raises(ValueError):
            Decision(shard_ids=(0, 0))

    def test_nonpositive_budget_rejected(self):
        with pytest.raises(ValueError):
            Decision(shard_ids=(0,), time_budget_ms=0.0)

    def test_negative_coordination_rejected(self):
        with pytest.raises(ValueError):
            Decision(shard_ids=(0,), coordination_delay_ms=-1.0)

    def test_override_for_unselected_shard_rejected(self):
        with pytest.raises(ValueError):
            Decision(shard_ids=(0,), frequency_overrides={5: 2.7})

    def test_empty_selection_allowed(self):
        assert Decision(shard_ids=()).shard_ids == ()


class TestClusterView:
    def test_queue_length_must_match(self):
        with pytest.raises(ValueError):
            ClusterView(
                now_ms=0.0, n_shards=3, default_freq_ghz=2.1, max_freq_ghz=2.7,
                queued_predicted_ms=(0.0, 0.0),
            )


class TestQueryRecord:
    def _record(self, outcomes):
        return QueryRecord(
            query=Query(query_id=0, terms=("a",)),
            arrival_ms=0.0,
            latency_ms=5.0,
            result=SearchResult(),
            decision=Decision(shard_ids=(0, 1)),
            outcomes=outcomes,
        )

    def test_counts(self):
        record = self._record(
            [
                ShardOutcome(shard_id=0, counted=True, docs_evaluated=10),
                ShardOutcome(shard_id=1, counted=False, docs_evaluated=4),
            ]
        )
        assert record.n_selected == 2
        assert record.n_counted == 1
        assert record.docs_searched == 14

    def test_defaults(self):
        record = self._record([])
        assert record.from_cache is False
        assert record.docs_searched == 0
