"""Bit-identity of the batched coordination plane against the loop path.

The fused cross-shard kernels promise *bit-identical* outputs to the
per-shard/per-query reference code — not "close", identical.  That holds
because every fused matmul runs the exact 2-D product per stack slice the
loop ran (BLAS can round a row differently inside a larger gemm, so the
kernels never merge rows into one gemm), and the feature tensors are
assembled with exact stack/max operations.  These properties pin the
guarantee down at every layer:

* ``StackedSequential.forward_batched`` vs per-model ``Sequential.forward``
  over Hypothesis-generated topologies, stack sizes and batches;
* vectorized feature extraction (matrix and whole-trace tensor forms) vs
  the per-shard reference functions, including OOV terms;
* ``PredictorBank.batch_predict`` / ``predict`` vs the reference
  ``predict_loop`` on a trained testbed, plus cache/prewarm semantics.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.layers import Dense, Dropout, Layer, ReLU
from repro.nn.losses import softmax
from repro.nn.model import Sequential, StackedSequential, mlp_classifier
from repro.predictors.features import (
    TermFeatureCache,
    latency_feature_matrix,
    latency_features,
    quality_feature_matrix,
    quality_features,
    trace_feature_tensors,
)
from repro.retrieval.query import Query

# ---------------------------------------------------------------------------
# StackedSequential vs per-model Sequential
# ---------------------------------------------------------------------------

topologies = st.tuples(
    st.integers(min_value=1, max_value=5),   # models in the stack
    st.integers(min_value=1, max_value=9),   # input features
    st.integers(min_value=2, max_value=6),   # output classes
    st.integers(min_value=0, max_value=3),   # hidden layers
    st.integers(min_value=1, max_value=12),  # hidden units
    st.integers(min_value=1, max_value=5),   # row batch B
    st.integers(min_value=0, max_value=2**31 - 1),  # seed
)


def build_stack(n_models, n_features, n_classes, hidden, units, seed):
    """Same-architecture models with independent weights, as the bank has."""
    return [
        mlp_classifier(
            n_features, n_classes,
            hidden_layers=hidden, hidden_units=units, seed=seed + i,
        )
        for i in range(n_models)
    ]


@settings(deadline=None)
@given(topologies)
def test_forward_batched_matches_each_model(topology):
    n_models, n_features, n_classes, hidden, units, batch, seed = topology
    models = build_stack(n_models, n_features, n_classes, hidden, units, seed)
    stack = StackedSequential.from_models(models)
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n_models, batch, n_features))

    logits = stack.forward_batched(x)
    assert logits.shape == (n_models, batch, n_classes)
    for s, model in enumerate(models):
        # The documented 3-D contract: slice s equals the whole row batch
        # pushed through model s (same B, so the same gemm shapes).
        assert np.array_equal(logits[s], model.forward(x[s]))

    probs = stack.predict_proba(x)
    classes = stack.predict_classes(x)
    for s, model in enumerate(models):
        assert np.array_equal(probs[s], softmax(model.forward(x[s])))
        assert np.array_equal(classes[s], np.argmax(model.forward(x[s]), axis=-1))


@settings(deadline=None)
@given(topologies)
def test_forward_batched_query_axis_matches_single_rows(topology):
    """The 4-D path keeps one row per (stack, query) gemm slice, so every
    slice must be bit-identical to that row evaluated entirely alone —
    the strongest form of the guarantee, and the one ``batch_predict``
    relies on to reproduce ``predict_loop`` exactly."""
    n_models, n_features, n_classes, hidden, units, n_queries, seed = topology
    models = build_stack(n_models, n_features, n_classes, hidden, units, seed)
    stack = StackedSequential.from_models(models)
    rng = np.random.default_rng(seed + 1)
    x = rng.normal(size=(n_models, n_queries, 1, n_features))

    logits = stack.forward_batched(x)
    assert logits.shape == (n_models, n_queries, 1, n_classes)
    for s, model in enumerate(models):
        for q in range(n_queries):
            assert np.array_equal(logits[s, q], model.forward(x[s, q]))


@settings(deadline=None)
@given(topologies)
def test_forward_batched_accepts_noncontiguous_input(topology):
    """The kernel copies transposed-view inputs to C order for speed; the
    copy must be exact (the production path feeds a [NQ, S, F] transpose)."""
    n_models, n_features, n_classes, hidden, units, batch, seed = topology
    models = build_stack(n_models, n_features, n_classes, hidden, units, seed)
    stack = StackedSequential.from_models(models)
    rng = np.random.default_rng(seed + 2)
    query_major = rng.normal(size=(batch, n_models, n_features))
    view = query_major.transpose(1, 0, 2)
    assert not view.flags["C_CONTIGUOUS"] or batch == 1 or n_models == 1
    assert np.array_equal(
        stack.forward_batched(view),
        stack.forward_batched(np.ascontiguousarray(view)),
    )


def test_forward_batched_does_not_mutate_input():
    models = build_stack(2, 4, 3, 1, 8, seed=7)
    stack = StackedSequential.from_models(models)
    x = np.random.default_rng(7).normal(size=(2, 3, 4))
    before = x.copy()
    stack.forward_batched(x)
    assert np.array_equal(x, before)


def test_from_models_skips_dropout():
    """Dropout is identity at inference, so a stack built from models with
    Dropout must match ``forward(training=False)`` exactly."""
    rng = np.random.default_rng(3)
    models = []
    for i in range(3):
        local = np.random.default_rng(10 + i)
        models.append(
            Sequential([
                Dense(6, 8, rng=local),
                ReLU(),
                Dropout(0.5, rng=local),
                Dense(8, 4, rng=local),
            ])
        )
    stack = StackedSequential.from_models(models)
    x = rng.normal(size=(3, 2, 6))
    out = stack.forward_batched(x)
    for s, model in enumerate(models):
        assert np.array_equal(out[s], model.forward(x[s], training=False))


def test_from_models_validation():
    with pytest.raises(ValueError):
        StackedSequential.from_models([])
    mismatched = [mlp_classifier(4, 3, 1, 8, seed=0), mlp_classifier(4, 3, 1, 9, seed=1)]
    with pytest.raises(ValueError):
        StackedSequential.from_models(mismatched)

    class Opaque(Layer):
        def forward(self, x, training=False):
            return x

        def backward(self, grad_out):
            return grad_out

    with pytest.raises(ValueError):
        StackedSequential.from_models([Sequential([Dense(2, 2), Opaque()])] * 2)


def test_forward_batched_rejects_bad_shapes():
    stack = StackedSequential.from_models(build_stack(3, 4, 2, 0, 1, seed=0))
    with pytest.raises(ValueError):
        stack.forward_batched(np.zeros((3, 4)))  # missing batch axis
    with pytest.raises(ValueError):
        stack.forward_batched(np.zeros((2, 1, 4)))  # wrong stack size


# ---------------------------------------------------------------------------
# Vectorized feature extraction vs the per-shard reference
# ---------------------------------------------------------------------------

# Real indexed terms (resolved from the testbed inside each test) are mixed
# with out-of-vocabulary strings: OOV terms exercise the zero-posting
# TermStats path and must aggregate identically in both pipelines.
OOV_TERMS = ("zzz-oov-a", "zzz-oov-b")


def draw_terms(data, testbed, min_size=1):
    vocab = sorted(
        {t for q in testbed.wikipedia_trace.queries for t in q.terms}
    )[:40] + list(OOV_TERMS)
    return tuple(
        data.draw(
            st.lists(
                st.sampled_from(vocab), min_size=min_size, max_size=5, unique=True
            )
        )
    )


@settings(deadline=None)
@given(data=st.data())
def test_feature_matrices_match_per_shard_reference(data, unit_testbed):
    terms = draw_terms(data, unit_testbed)
    stats_indexes = unit_testbed.bank.stats_indexes
    cache = TermFeatureCache(stats_indexes)

    quality = quality_feature_matrix(terms, cache)
    latency = latency_feature_matrix(terms, cache)
    assert quality.shape == (len(stats_indexes), 10)
    assert latency.shape == (len(stats_indexes), 15)
    for sid, stats in enumerate(stats_indexes):
        assert np.array_equal(quality[sid], quality_features(terms, stats))
        assert np.array_equal(latency[sid], latency_features(terms, stats))


@settings(deadline=None)
@given(data=st.data())
def test_trace_tensors_match_per_query_matrices(data, unit_testbed):
    term_tuples = [
        draw_terms(data, unit_testbed)
        for _ in range(data.draw(st.integers(min_value=1, max_value=6)))
    ]
    cache = TermFeatureCache(unit_testbed.bank.stats_indexes)
    quality_t, latency_t = trace_feature_tensors(term_tuples, cache)
    assert quality_t.shape[0] == latency_t.shape[0] == len(term_tuples)
    for i, terms in enumerate(term_tuples):
        assert np.array_equal(quality_t[i], quality_feature_matrix(terms, cache))
        assert np.array_equal(latency_t[i], latency_feature_matrix(terms, cache))


def test_feature_functions_reject_empty_queries(unit_testbed):
    cache = TermFeatureCache(unit_testbed.bank.stats_indexes)
    with pytest.raises(ValueError):
        quality_feature_matrix((), cache)
    with pytest.raises(ValueError):
        latency_feature_matrix((), cache)
    with pytest.raises(ValueError):
        trace_feature_tensors([("a",), ()], cache)


def test_trace_tensors_empty_trace(unit_testbed):
    cache = TermFeatureCache(unit_testbed.bank.stats_indexes)
    quality_t, latency_t = trace_feature_tensors([], cache)
    assert quality_t.shape == (0, cache.n_shards, 10)
    assert latency_t.shape == (0, cache.n_shards, 15)


# ---------------------------------------------------------------------------
# PredictorBank: batched plane vs the reference loop
# ---------------------------------------------------------------------------


def test_batch_predict_is_bit_identical_to_loop(unit_testbed):
    """Every distinct trace query, through both paths, field by field."""
    bank = unit_testbed.bank
    queries = list(
        {q.terms: q for q in unit_testbed.wikipedia_trace.queries}.values()
    )
    batched = bank.batch_predict(queries)
    for query, predictions in zip(queries, batched):
        reference = bank.predict_loop(query)
        assert predictions == reference  # frozen dataclasses: exact equality
        for pred in predictions:
            assert isinstance(pred.quality_k, int)
            assert isinstance(pred.service_default_ms, float)


def test_predict_matches_loop_on_edge_queries(unit_testbed):
    bank = unit_testbed.bank
    some_term = unit_testbed.wikipedia_trace.queries[0].terms[0]
    edge_queries = [
        Query(query_id=9001, terms=(OOV_TERMS[0],)),            # OOV only
        Query(query_id=9002, terms=(some_term,)),               # single term
        Query(query_id=9003, terms=(some_term, OOV_TERMS[1])),  # mixed
    ]
    for query in edge_queries:
        assert bank.predict(query) == bank.predict_loop(query)


def test_predict_returns_cached_immutable_tuple(unit_testbed):
    bank = unit_testbed.bank
    query = unit_testbed.wikipedia_trace.queries[0]
    first = bank.predict(query)
    assert isinstance(first, tuple)
    assert bank.predict(query) is first  # memoized per distinct query
    assert all(dataclasses.is_dataclass(p) for p in first)
    with pytest.raises(dataclasses.FrozenInstanceError):
        first[0].__class__.__setattr__(first[0], "quality_k", 0)


def test_prewarm_counts_and_changes_nothing(unit_testbed):
    bank = unit_testbed.bank
    queries = unit_testbed.wikipedia_trace.queries[:8]
    cold = [bank.predict_loop(q) for q in queries]
    # Evict these entries so prewarm has real work to do, then check it
    # reports the distinct-query count and reproduces the loop exactly.
    for q in queries:
        bank._prediction_cache.pop(q.terms, None)
    warmed = bank.prewarm(queries)
    assert warmed == len({q.terms for q in queries})
    assert bank.prewarm(queries) == 0  # everything already cached
    assert [bank.predict(q) for q in queries] == cold


def test_untrained_bank_rejects_batched_paths(shards):
    from repro.cluster import SearchCluster
    from repro.predictors import PredictorBank

    bank = PredictorBank(SearchCluster(shards))
    query = Query(query_id=1, terms=("t0",))
    with pytest.raises(RuntimeError):
        bank.batch_predict([query])
    with pytest.raises(RuntimeError):
        bank.fused_stacks()
    with pytest.raises(RuntimeError):
        bank.predict_loop(query)
