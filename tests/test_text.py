"""Unit tests for the text-analysis substrate."""

import pytest

from repro.text import (
    ENGLISH_STOPWORDS,
    LightStemmer,
    SimpleTokenizer,
    StandardAnalyzer,
    StopwordFilter,
    WhitespaceAnalyzer,
)
from repro.text.tokenizer import NGramTokenizer


class TestSimpleTokenizer:
    def test_splits_on_punctuation_and_whitespace(self):
        tok = SimpleTokenizer()
        assert tok.tokenize("Hello, world! foo-bar") == ["Hello", "world", "foo", "bar"]

    def test_keeps_numbers_and_mixed_tokens(self):
        tok = SimpleTokenizer()
        assert tok.tokenize("model T5 from 2018") == ["model", "T5", "from", "2018"]

    def test_keeps_apostrophe_words_whole(self):
        assert SimpleTokenizer().tokenize("don't stop") == ["don't", "stop"]

    def test_empty_input(self):
        assert SimpleTokenizer().tokenize("") == []
        assert SimpleTokenizer().tokenize("   \t\n") == []

    def test_drops_over_long_tokens(self):
        tok = SimpleTokenizer(max_token_length=5)
        assert tok.tokenize("short waytoolongtoken ok") == ["short", "ok"]

    def test_rejects_bad_max_length(self):
        with pytest.raises(ValueError):
            SimpleTokenizer(max_token_length=0)

    def test_preserves_duplicates_and_order(self):
        assert SimpleTokenizer().tokenize("a b a") == ["a", "b", "a"]


class TestNGramTokenizer:
    def test_trigrams(self):
        assert NGramTokenizer(3).tokenize("abcd") == ["abc", "bcd"]

    def test_short_input_returned_whole(self):
        assert NGramTokenizer(5).tokenize("ab") == ["ab"]

    def test_empty(self):
        assert NGramTokenizer(3).tokenize("") == []

    def test_normalizes_whitespace(self):
        assert NGramTokenizer(3).tokenize("a  b") == ["a b"]


class TestStopwordFilter:
    def test_removes_stopwords(self):
        filt = StopwordFilter()
        assert filt.filter(["the", "quick", "fox"]) == ["quick", "fox"]

    def test_custom_set(self):
        filt = StopwordFilter({"quick"})
        assert filt.filter(["the", "quick", "fox"]) == ["the", "fox"]

    def test_common_words_present(self):
        for word in ("the", "and", "of", "is"):
            assert word in ENGLISH_STOPWORDS


class TestLightStemmer:
    @pytest.mark.parametrize(
        "token,expected",
        [
            ("cities", "city"),
            ("running", "runn"),
            ("played", "play"),
            ("cats", "cat"),
            ("was", "was"),  # guard: stem would be too short
            ("organization", "organize"),
            ("foxes", "fox"),
            ("searches", "search"),
            ("makes", "make"),
        ],
    )
    def test_stems(self, token, expected):
        assert LightStemmer().stem(token) == expected

    def test_digits_untouched(self):
        assert LightStemmer().stem("t128s") == "t128s"

    def test_filter_maps_all(self):
        assert LightStemmer().filter(["cats", "dogs"]) == ["cat", "dog"]

    def test_idempotent_on_short_words(self):
        stemmer = LightStemmer()
        for word in ("a", "is", "go", "ox"):
            assert stemmer.stem(word) == word


class TestAnalyzers:
    def test_standard_chain(self):
        analyzer = StandardAnalyzer()
        terms = analyzer.analyze("The Quick Foxes were running!")
        assert "the" not in terms and "were" not in terms
        assert "quick" in terms
        assert "fox" in terms  # stemmed plural

    def test_standard_without_stemming(self):
        analyzer = StandardAnalyzer(stem=False)
        assert "foxes" in analyzer.analyze("the foxes")

    def test_whitespace_analyzer_is_verbatim(self):
        analyzer = WhitespaceAnalyzer()
        assert analyzer.analyze("T1 t2  t3") == ["t1", "t2", "t3"]

    def test_same_analyzer_for_index_and_query_lines_up(self):
        analyzer = StandardAnalyzer()
        assert analyzer.analyze("Searching") == analyzer.analyze("searches")
