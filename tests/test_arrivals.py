"""Arrival processes and query streams: determinism, rates, bounded memory."""

import itertools
import math
import tracemalloc

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.serving import (
    BurstProfile,
    DiurnalProfile,
    MMPPProcess,
    ModulatedPoissonProcess,
    PoissonProcess,
    QueryStream,
    StepProfile,
    make_arrivals,
)


def take(process, n: int) -> list[float]:
    return list(itertools.islice(process.times(), n))


class TestPoisson:
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        rate=st.floats(min_value=0.5, max_value=5000.0),
    )
    def test_seed_determines_sequence(self, seed, rate):
        a = PoissonProcess(rate, seed=seed)
        b = PoissonProcess(rate, seed=seed)
        assert take(a, 50) == take(b, 50)

    def test_different_seeds_diverge(self):
        assert take(PoissonProcess(10.0, seed=1), 20) != take(
            PoissonProcess(10.0, seed=2), 20
        )

    def test_times_are_strictly_increasing(self):
        times = take(PoissonProcess(100.0, seed=3), 500)
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_empirical_rate_matches_nominal(self):
        n = 20_000
        times = take(PoissonProcess(250.0, seed=4), n)
        empirical = n / times[-1]
        assert empirical == pytest.approx(250.0, rel=0.05)

    def test_iterating_twice_replays_identically(self):
        process = PoissonProcess(50.0, seed=5)
        assert take(process, 100) == take(process, 100)

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            PoissonProcess(0.0)


class TestMMPP:
    def test_seed_determines_sequence(self):
        a = MMPPProcess((20.0, 200.0), (2.0, 2.0), seed=7)
        b = MMPPProcess((20.0, 200.0), (2.0, 2.0), seed=7)
        assert take(a, 200) == take(b, 200)

    def test_stationary_rate_is_dwell_weighted_mean(self):
        process = MMPPProcess((30.0, 90.0), (4.0, 2.0), seed=0)
        expected = (30.0 * 4.0 + 90.0 * 2.0) / 6.0
        assert process.mean_rate_qps() == pytest.approx(expected)
        n = 30_000
        times = take(process, n)
        assert n / times[-1] == pytest.approx(expected, rel=0.08)

    def test_rate_switching_is_overdispersed(self):
        """MMPP gaps mix two exponentials, so dispersion exceeds Poisson's 1."""
        process = MMPPProcess((10.0, 300.0), (5.0, 5.0), seed=9)
        times = np.array(take(process, 20_000))
        gaps = np.diff(times)
        cv2 = gaps.var() / gaps.mean() ** 2  # == 1 for a plain Poisson
        assert cv2 > 1.5

    def test_rate_switching_visits_both_regimes(self):
        """Windowed counts near each state's rate, far apart, both frequent."""
        process = MMPPProcess((10.0, 300.0), (5.0, 5.0), seed=11)
        times = np.array(take(process, 30_000))
        window = 1.0  # much shorter than the 5 s dwell: windows are ~pure-state
        counts = np.bincount(times.astype(int), minlength=int(times[-1]) + 1)
        slow = (counts <= 30).sum()  # near 10 qps
        fast = (counts >= 150).sum()  # near 300 qps
        assert window and slow > 0.2 * len(counts)
        assert fast > 0.2 * len(counts)

    def test_silent_state_idles_until_switch(self):
        process = MMPPProcess((0.0, 100.0), (1.0, 1.0), seed=1)
        times = take(process, 1000)
        assert all(b > a for a, b in zip(times, times[1:]))
        assert process.mean_rate_qps() == pytest.approx(50.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            MMPPProcess((10.0,), (1.0,))
        with pytest.raises(ValueError):
            MMPPProcess((10.0, 20.0), (1.0,))
        with pytest.raises(ValueError):
            MMPPProcess((0.0, 0.0), (1.0, 1.0))
        with pytest.raises(ValueError):
            MMPPProcess((10.0, 20.0), (1.0, 0.0))


class TestProfiles:
    def test_diurnal_trough_and_peak(self):
        profile = DiurnalProfile(period_s=100.0, floor=0.2)
        assert profile.factor(0.0) == pytest.approx(0.2)
        assert profile.factor(50.0) == pytest.approx(1.0)
        assert profile.mean_factor == pytest.approx(0.6)

    def test_diurnal_factor_stays_in_envelope(self):
        profile = DiurnalProfile(period_s=60.0, floor=0.3)
        for t in np.linspace(0.0, 180.0, 500):
            assert 0.3 - 1e-12 <= profile.factor(float(t)) <= 1.0 + 1e-12

    def test_burst_square_wave(self):
        profile = BurstProfile(every_s=10.0, burst_s=2.0, multiplier=4.0)
        assert profile.factor(1.0) == 4.0
        assert profile.factor(5.0) == 1.0
        assert profile.factor(11.5) == 4.0
        assert profile.peak_factor == 4.0
        assert profile.mean_factor == pytest.approx((4.0 * 2 + 8) / 10)

    def test_step_profile_holds_last_step(self):
        profile = StepProfile(steps=((5.0, 1.0), (5.0, 3.0)))
        assert profile.factor(2.0) == 1.0
        assert profile.factor(7.0) == 3.0
        assert profile.factor(1e6) == 3.0  # held forever past the schedule
        assert profile.mean_factor == pytest.approx(2.0)

    def test_modulated_empirical_rate_tracks_profile_mean(self):
        profile = BurstProfile(every_s=4.0, burst_s=1.0, multiplier=5.0)
        process = ModulatedPoissonProcess(100.0, profile, seed=2)
        n = 20_000
        times = take(process, n)
        assert n / times[-1] == pytest.approx(
            process.mean_rate_qps(), rel=0.05
        )

    def test_modulated_is_deterministic(self):
        profile = DiurnalProfile(period_s=30.0)
        a = ModulatedPoissonProcess(80.0, profile, seed=6)
        b = ModulatedPoissonProcess(80.0, profile, seed=6)
        assert take(a, 300) == take(b, 300)


class TestMakeArrivals:
    @pytest.mark.parametrize("kind", ["poisson", "mmpp", "diurnal", "burst"])
    def test_factory_preserves_mean_rate(self, kind):
        process = make_arrivals(kind, 120.0, seed=0)
        assert process.mean_rate_qps() == pytest.approx(120.0)

    @pytest.mark.parametrize("kind", ["poisson", "mmpp", "diurnal", "burst"])
    def test_factory_empirical_rate(self, kind):
        # Count over whole modulation periods: stopping mid-cycle would
        # bias a diurnal/burst estimate toward whichever phase it stops in.
        horizon = 120.0  # one diurnal period, 4 burst periods, 12 mmpp dwells
        process = make_arrivals(kind, 200.0, seed=3)
        count = sum(
            1 for _ in itertools.takewhile(lambda t: t <= horizon, process.times())
        )
        assert count / horizon == pytest.approx(200.0, rel=0.1)

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown arrival"):
            make_arrivals("fractal", 10.0)

    def test_mmpp_factors_renormalized_to_keep_mean(self):
        process = make_arrivals(
            "mmpp", 100.0, mmpp_rate_factors=(1.0, 3.0)
        )
        assert process.mean_rate_qps() == pytest.approx(100.0)


POOL = [(f"t{i:03d}", f"t{i + 1:03d}") for i in range(50)]


class TestQueryStream:
    def test_replays_identically(self):
        stream = QueryStream(
            POOL, PoissonProcess(100.0, seed=1), seed=2, max_queries=500
        )
        first = [(q.query_id, q.terms, q.arrival_time) for q in stream]
        second = [(q.query_id, q.terms, q.arrival_time) for q in stream]
        assert first == second
        assert len(first) == 500

    def test_duration_stop_condition(self):
        stream = QueryStream(
            POOL, PoissonProcess(100.0, seed=1), duration_s=2.0
        )
        queries = list(stream)
        assert queries
        assert all(q.arrival_time <= 2.0 for q in queries)
        assert len(queries) == pytest.approx(200, rel=0.4)

    def test_zipf_head_is_most_popular(self):
        stream = QueryStream(
            POOL,
            PoissonProcess(100.0, seed=4),
            popularity_exponent=1.0,
            seed=5,
            max_queries=5000,
        )
        counts: dict[tuple, int] = {}
        for q in stream:
            counts[q.terms] = counts.get(q.terms, 0) + 1
        head, tail = counts.get(POOL[0], 0), counts.get(POOL[-1], 0)
        assert head > 5 * max(tail, 1)

    def test_distinct_queries_is_the_pool(self):
        stream = QueryStream(
            POOL, PoissonProcess(10.0, seed=0), max_queries=10
        )
        distinct = stream.distinct_queries()
        assert [q.terms for q in distinct] == [tuple(t) for t in POOL]

    def test_validation(self):
        with pytest.raises(ValueError, match="stop condition"):
            QueryStream(POOL, PoissonProcess(10.0))
        with pytest.raises(ValueError, match="non-empty"):
            QueryStream([], PoissonProcess(10.0), max_queries=1)
        with pytest.raises(ValueError):
            QueryStream(POOL, PoissonProcess(10.0), max_queries=0)
        with pytest.raises(ValueError):
            QueryStream(POOL, PoissonProcess(10.0), duration_s=-1.0)

    def test_streaming_100k_is_bounded_memory(self):
        """The lazy contract: 100k queries allocate no per-query storage.

        The generator holds the pool, the CDF and one in-flight query, so
        peak traced allocation stays under 2 MiB no matter the length —
        a materialized list of 100k Query objects would be tens of MiB.
        """
        stream = QueryStream(
            POOL, PoissonProcess(500.0, seed=8), seed=9, max_queries=100_000
        )
        tracemalloc.start()
        count = 0
        last_t = 0.0
        for query in stream:
            count += 1
            last_t = query.arrival_time
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert count == 100_000
        assert last_t > 0.0
        assert peak < 2 * 1024 * 1024

    def test_offered_rate_passthrough(self):
        stream = QueryStream(
            POOL, PoissonProcess(123.0, seed=0), max_queries=1
        )
        assert stream.offered_rate_qps() == 123.0


class TestHypothesisDeterminism:
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        kind=st.sampled_from(["poisson", "mmpp", "diurnal", "burst"]),
    )
    def test_every_factory_kind_is_seed_deterministic(self, seed, kind):
        a = make_arrivals(kind, 150.0, seed=seed)
        b = make_arrivals(kind, 150.0, seed=seed)
        assert take(a, 40) == take(b, 40)

    @given(seed=st.integers(min_value=0, max_value=2**31))
    def test_stream_is_seed_deterministic(self, seed):
        def build():
            return QueryStream(
                POOL,
                PoissonProcess(100.0, seed=seed),
                seed=seed + 1,
                max_queries=60,
            )

        first = [(q.terms, q.arrival_time) for q in build()]
        second = [(q.terms, q.arrival_time) for q in build()]
        assert first == second
        assert math.isfinite(first[-1][1])
