"""Unit + property tests for query evaluation.

The central property: exhaustive, MaxScore and WAND return identical hit
lists (same doc ids, same scores up to float summation order) while the
pruning strategies do no more work than exhaustive evaluation.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index import Document, IndexBuilder
from repro.retrieval import (
    DistributedSearcher,
    Query,
    ShardSearcher,
    block_max_wand_search,
    exhaustive_search,
    exhaustive_search_daat,
    maxscore_search,
    merge_results,
    wand_search,
)
from repro.retrieval.result import CostStats, SearchResult
from repro.text import WhitespaceAnalyzer

PRUNED = {
    "maxscore": maxscore_search,
    "wand": wand_search,
    "block_max_wand": block_max_wand_search,
}


def build_shard(n_docs=150, vocab=40, seed=0):
    rng = random.Random(seed)
    builder = IndexBuilder(0, analyzer=WhitespaceAnalyzer())
    for doc_id in range(n_docs):
        words = [f"w{rng.randint(0, vocab - 1)}" for _ in range(rng.randint(5, 30))]
        builder.add(Document(doc_id=doc_id, text=" ".join(words)))
    return builder.build()


def assert_same_hits(a, b):
    """Hit lists agree up to floating summation order.

    Different strategies sum a document's term scores in different orders,
    so genuinely tied documents can differ by 1 ulp and swap at the tie —
    exactly like real engines.  Scores must match pairwise; doc ids must
    match except where the scores tie.
    """
    assert len(a.hits) == len(b.hits)
    for (da, sa), (db, sb) in zip(a.hits, b.hits):
        assert sa == pytest.approx(sb, abs=1e-9)
    # Ranks may only differ where scores tie; strictly-distinct scores pin
    # their doc uniquely.
    scores_a = [s for _, s in a.hits]
    for i, ((da, sa), (db, _)) in enumerate(zip(a.hits, b.hits)):
        if da != db:
            tied = [
                j for j, s in enumerate(scores_a) if abs(s - sa) <= 1e-9
            ]
            assert len(tied) > 1 or i == len(a.hits) - 1


class TestStrategyEquivalence:
    @pytest.mark.parametrize("name", sorted(PRUNED))
    @pytest.mark.parametrize("terms", [["w0"], ["w0", "w1"], ["w3", "w7", "w11", "w2"]])
    def test_matches_exhaustive(self, name, terms):
        shard = build_shard()
        assert_same_hits(
            exhaustive_search(shard, terms, 10), PRUNED[name](shard, terms, 10)
        )

    def test_daat_reference_matches_vectorized(self):
        shard = build_shard()
        assert_same_hits(
            exhaustive_search(shard, ["w1", "w2"], 10),
            exhaustive_search_daat(shard, ["w1", "w2"], 10),
        )

    @pytest.mark.parametrize("name", sorted(PRUNED))
    def test_pruning_does_less_or_equal_work(self, name):
        shard = build_shard()
        terms = ["w0", "w1", "w2"]
        full = exhaustive_search(shard, terms, 10)
        pruned = PRUNED[name](shard, terms, 10)
        assert pruned.cost.docs_evaluated <= full.cost.docs_evaluated
        assert pruned.cost.postings_scored <= full.cost.postings_scored

    @pytest.mark.parametrize(
        "search",
        [exhaustive_search, exhaustive_search_daat, maxscore_search, wand_search],
        ids=["vec", "daat", "maxscore", "wand"],
    )
    def test_unknown_terms_empty(self, search):
        shard = build_shard()
        result = search(shard, ["nosuchterm"], 10)
        assert result.hits == []

    @pytest.mark.parametrize(
        "search",
        [exhaustive_search, maxscore_search, wand_search],
        ids=["vec", "maxscore", "wand"],
    )
    def test_k_validation(self, search):
        with pytest.raises(ValueError):
            search(build_shard(20), ["w0"], 0)

    def test_k_one(self):
        shard = build_shard()
        terms = ["w0", "w1"]
        assert_same_hits(
            exhaustive_search(shard, terms, 1), maxscore_search(shard, terms, 1)
        )

    def test_k_larger_than_matches(self):
        shard = build_shard(n_docs=10)
        full = exhaustive_search(shard, ["w0"], 100)
        assert len(full.hits) == shard.doc_freq("w0")
        assert_same_hits(full, wand_search(shard, ["w0"], 100))


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 1000),
    k=st.integers(1, 15),
    term_ids=st.lists(st.integers(0, 25), min_size=1, max_size=5, unique=True),
)
def test_equivalence_property(seed, k, term_ids):
    """Random shards, random queries: all strategies agree."""
    shard = build_shard(n_docs=80, vocab=26, seed=seed)
    terms = [f"w{i}" for i in term_ids]
    reference = exhaustive_search(shard, terms, k)
    for strategy in PRUNED.values():
        assert_same_hits(reference, strategy(shard, terms, k))


class TestMergeResults:
    def test_merges_and_sorts(self):
        a = SearchResult(hits=[(1, 5.0), (2, 1.0)], cost=CostStats(docs_evaluated=10))
        b = SearchResult(hits=[(3, 3.0)], cost=CostStats(docs_evaluated=7))
        merged = merge_results([a, b], k=2)
        assert merged.hits == [(1, 5.0), (3, 3.0)]
        assert merged.cost.docs_evaluated == 17

    def test_tie_break_doc_id(self):
        a = SearchResult(hits=[(9, 2.0)])
        b = SearchResult(hits=[(4, 2.0)])
        assert merge_results([a, b], 1).hits == [(4, 2.0)]

    def test_empty(self):
        assert merge_results([], 5).hits == []


class TestShardSearcher:
    def test_caches_by_terms(self, shards):
        searcher = ShardSearcher(shards[0], k=5)
        q1 = Query(query_id=1, terms=("t1", "t2"))
        q2 = Query(query_id=2, terms=("t1", "t2"))
        assert searcher.search(q1) is searcher.search(q2)

    def test_rejects_unknown_strategy(self, shards):
        with pytest.raises(ValueError):
            ShardSearcher(shards[0], strategy="bogus")

    def test_search_terms_dedups(self, shards):
        searcher = ShardSearcher(shards[0], k=5)
        result = searcher.search_terms(["t1", "t1", "t2"])
        assert result is searcher.search(Query(query_id=0, terms=("t1", "t2")))


class TestDistributedSearcher:
    def test_search_all_matches_manual_merge(self, shards):
        ds = DistributedSearcher(shards, k=10)
        query = Query(query_id=0, terms=("t1", "t12"))
        merged = ds.search(query)
        manual = merge_results(
            [ds.search_shard(sid, query) for sid in range(len(shards))], 10
        )
        assert merged.hits == manual.hits

    def test_subset_search(self, shards):
        ds = DistributedSearcher(shards, k=10)
        query = Query(query_id=0, terms=("t1",))
        subset = ds.search(query, shard_ids=[0, 1])
        all_docs_on_01 = set(shards[0].doc_lengths) | set(shards[1].doc_lengths)
        assert all(doc in all_docs_on_01 for doc in subset.doc_ids())

    def test_contributions_sum_to_topk(self, shards):
        ds = DistributedSearcher(shards, k=10)
        query = Query(query_id=0, terms=("t1", "t12"))
        contributions = ds.shard_contributions(query)
        merged = ds.search(query)
        assert sum(contributions.values()) == len(merged.hits[:10])

    def test_contribution_k_capped(self, shards):
        ds = DistributedSearcher(shards, k=10)
        with pytest.raises(ValueError):
            ds.shard_contributions(Query(query_id=0, terms=("t1",)), k=50)


class TestKernelDispatchAndTelemetry:
    """The searcher runs the arena kernels by default; scalars stay
    available as ``*_reference`` strategies and the two must agree
    bit-for-bit through the full search/memoize path."""

    def test_strategies_registry_pairs_kernels_with_references(self):
        from repro.retrieval import KERNEL_STRATEGIES, STRATEGIES

        for name in KERNEL_STRATEGIES:
            assert name in STRATEGIES
            assert f"{name}_reference" in STRATEGIES
            assert STRATEGIES[name] is not STRATEGIES[f"{name}_reference"]

    def test_kernel_strategy_matches_reference_through_searcher(self, shards):
        from repro.retrieval import KERNEL_STRATEGIES

        query = Query(query_id=0, terms=("t1", "t12", "t41"))
        for name in sorted(KERNEL_STRATEGIES):
            kernel = ShardSearcher(shards[0], k=10, strategy=name)
            reference = ShardSearcher(
                shards[0], k=10, strategy=f"{name}_reference"
            )
            assert (
                kernel.search(query).fingerprint()
                == reference.search(query).fingerprint()
            )

    def test_bind_telemetry_records_kernel_spans_and_counters(self, shards):
        from repro.telemetry import NO_TELEMETRY, Telemetry

        telemetry = Telemetry()
        searcher = ShardSearcher(shards[0], k=5, strategy="maxscore")
        searcher.bind_telemetry(telemetry)
        searcher.search(Query(query_id=0, terms=("t1", "t12")))
        spans = [
            s for s in telemetry.tracer.spans if s.name == "retrieval.kernel"
        ]
        assert len(spans) == 1
        assert spans[0].attrs["strategy"] == "maxscore"
        assert "chunks" in spans[0].attrs and "offers" in spans[0].attrs
        chunks = telemetry.metrics.counter("retrieval.kernel.chunks").value
        assert chunks >= 0  # small shards may dispatch to the scalar
        # Cached repeat: no new span, no double-count.
        searcher.search(Query(query_id=1, terms=("t1", "t12")))
        assert (
            len([s for s in telemetry.tracer.spans if s.name == "retrieval.kernel"])
            == 1
        )
        # Rebinding the disabled session silences future searches.
        searcher.bind_telemetry(NO_TELEMETRY)
        searcher.search(Query(query_id=2, terms=("t41",)))
        assert (
            len([s for s in telemetry.tracer.spans if s.name == "retrieval.kernel"])
            == 1
        )

    def test_telemetry_never_changes_results(self, shards):
        from repro.telemetry import Telemetry

        plain = ShardSearcher(shards[0], k=10, strategy="maxscore")
        traced = ShardSearcher(shards[0], k=10, strategy="maxscore")
        traced.bind_telemetry(Telemetry())
        query = Query(query_id=0, terms=("t1", "t12"))
        assert (
            plain.search(query).fingerprint() == traced.search(query).fingerprint()
        )


class TestShardContributions:
    def test_one_search_per_shard(self, shards):
        """The contribution labels reuse a single memoized search per
        shard — the rewrite removed the second per-shard pass."""
        ds = DistributedSearcher(shards, k=10)
        query = Query(query_id=0, terms=("t1", "t12"))
        ds.shard_contributions(query)
        assert [s.computations for s in ds.cache_stats()] == [1] * len(shards)
        # ...and the global merge afterwards is pure cache hits.
        ds.search(query)
        assert [s.computations for s in ds.cache_stats()] == [1] * len(shards)

    def test_first_shard_wins_on_duplicate_doc_ids(self):
        """Disjoint partitioning makes duplicates impossible in practice;
        the tie rule still pins label determinism if it is violated."""
        def tiny_shard(shard_id):
            builder = IndexBuilder(shard_id, analyzer=WhitespaceAnalyzer())
            builder.add(Document(doc_id=7, text="apple apple banana"))
            return builder.build()

        ds = DistributedSearcher([tiny_shard(0), tiny_shard(1)], k=2)
        counts = ds.shard_contributions(
            Query(query_id=0, terms=("apple", "banana"))
        )
        # The merge keeps both copies of doc 7; every ambiguous hit is
        # attributed to the lowest shard id.
        assert counts[0] == 2 and counts[1] == 0
