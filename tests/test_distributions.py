"""Unit + property tests for Gamma score-distribution modeling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scoring.distributions import (
    combine_gamma_sum,
    fit_gamma_mle,
    fit_gamma_moments,
    gamma_tail_count,
    histogram_tail_count,
    score_histogram,
)


class TestMomentsFit:
    def test_recovers_moments(self):
        fit = fit_gamma_moments(mean=4.0, variance=2.0, count=100)
        assert fit.mean == pytest.approx(4.0)
        assert fit.variance == pytest.approx(2.0)
        assert fit.count == 100

    def test_degenerate_variance(self):
        fit = fit_gamma_moments(mean=3.0, variance=0.0, count=10)
        # Collapses to a near-point mass around the mean.
        assert fit.sf(2.9) > 0.99
        assert fit.sf(3.1) < 0.01

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            fit_gamma_moments(1.0, 1.0, -1)

    def test_sf_monotone(self):
        fit = fit_gamma_moments(5.0, 4.0, 50)
        thresholds = np.linspace(0, 20, 30)
        values = [fit.sf(t) for t in thresholds]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))

    def test_sf_at_zero_is_one(self):
        fit = fit_gamma_moments(5.0, 4.0, 50)
        assert fit.sf(0.0) == 1.0

    def test_expected_above_scales_with_count(self):
        small = fit_gamma_moments(5.0, 4.0, 10)
        large = fit_gamma_moments(5.0, 4.0, 1000)
        assert large.expected_above(5.0) == pytest.approx(
            100 * small.expected_above(5.0)
        )

    def test_quantile_inverts_sf(self):
        fit = fit_gamma_moments(5.0, 4.0, 10)
        q = fit.quantile(0.9)
        assert fit.sf(q) == pytest.approx(0.1, abs=1e-6)

    def test_quantile_validation(self):
        fit = fit_gamma_moments(5.0, 4.0, 10)
        with pytest.raises(ValueError):
            fit.quantile(0.0)


class TestMLEFit:
    def test_fits_gamma_samples(self):
        rng = np.random.default_rng(0)
        samples = rng.gamma(shape=3.0, scale=2.0, size=4000)
        fit = fit_gamma_mle(samples)
        assert fit.shape == pytest.approx(3.0, rel=0.15)
        assert fit.scale == pytest.approx(2.0, rel=0.15)

    def test_empty_input(self):
        fit = fit_gamma_mle(np.zeros(0))
        assert fit.count == 0

    def test_single_value(self):
        fit = fit_gamma_mle(np.array([2.5]))
        assert fit.count == 1
        assert fit.mean == pytest.approx(2.5, rel=1e-6)


class TestCombine:
    def test_sum_moments_add(self):
        a = fit_gamma_moments(2.0, 1.0, 100)
        b = fit_gamma_moments(3.0, 2.0, 50)
        combined = combine_gamma_sum([a, b])
        assert combined.mean == pytest.approx(5.0)
        assert combined.variance == pytest.approx(3.0)
        assert combined.count == 50  # min posting length

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            combine_gamma_sum([])


class TestHistogramHelpers:
    def test_score_histogram_ignores_nonpositive(self):
        counts, edges = score_histogram(np.array([0.0, -1.0, 1.0, 2.0]), bins=2)
        assert counts.sum() == 2

    def test_all_zero_scores(self):
        counts, _ = score_histogram(np.zeros(5), bins=3)
        assert counts.sum() == 0

    def test_tail_count(self):
        scores = np.array([1.0, 2.0, 3.0, 4.0])
        assert histogram_tail_count(scores, 2.5) == 2
        assert gamma_tail_count(fit_gamma_moments(2.5, 1.0, 4), 0.0) == 4.0


@settings(max_examples=100, deadline=None)
@given(
    mean=st.floats(0.1, 50.0),
    variance=st.floats(0.01, 100.0),
    count=st.integers(1, 10_000),
    threshold=st.floats(0.0, 100.0),
)
def test_expected_above_bounded_by_count(mean, variance, count, threshold):
    fit = fit_gamma_moments(mean, variance, count)
    expected = fit.expected_above(threshold)
    assert 0.0 <= expected <= count + 1e-9
