"""Serving plane: closed-loop bit-identity, admission, stats, pooled executors."""

import pytest

from repro.cluster.cache import ResultCache
from repro.cluster.engine import RunResult
from repro.cluster.types import Decision, QueryRecord, ShardOutcome
from repro.retrieval.result import SearchResult
from repro.retrieval.query import Query
from repro.serving import (
    AdmissionConfig,
    AdmissionController,
    DeadlineQueue,
    PoissonProcess,
    QueryStream,
    ServingPlane,
    ServingStats,
    pool_from_corpus,
)


def run_fingerprint(run: RunResult) -> str:
    lines = [run.policy_name, repr(run.power)]
    for record in run.records:
        lines.append(
            f"{record.query.query_id}|{record.latency_ms!r}|"
            f"{record.result.fingerprint()}"
        )
    return "\n".join(lines)


def open_loop_stream(testbed, rate_qps=400.0, n=300, seed=0):
    pool = pool_from_corpus(testbed.corpus, n_distinct=40, seed=seed + 17)
    return QueryStream(
        pool,
        PoissonProcess(rate_qps, seed=seed),
        seed=seed + 1,
        max_queries=n,
    )


class TestClosedLoopBitIdentity:
    """run_trace must be the serving plane's degenerate configuration."""

    @pytest.mark.parametrize("policy_name", ["exhaustive", "cottage"])
    def test_serving_plane_matches_run_trace(self, unit_testbed, policy_name):
        trace = unit_testbed.wikipedia_trace
        baseline = unit_testbed.cluster.run_trace(
            trace, unit_testbed.make_policy(policy_name)
        )
        replayed = ServingPlane(unit_testbed.cluster).run(
            trace, unit_testbed.make_policy(policy_name)
        )
        assert run_fingerprint(baseline) == run_fingerprint(replayed)

    def test_run_trace_worker_override_stays_bit_identical(self, unit_testbed):
        trace = unit_testbed.wikipedia_trace
        serial = unit_testbed.cluster.run_trace(
            trace, unit_testbed.make_policy("exhaustive")
        )
        threaded = unit_testbed.cluster.run_trace(
            trace, unit_testbed.make_policy("exhaustive"), workers=2
        )
        assert run_fingerprint(serial) == run_fingerprint(threaded)

    def test_closed_loop_has_no_serving_sink_by_default(self, unit_testbed):
        run = unit_testbed.cluster.run_trace(
            unit_testbed.wikipedia_trace, unit_testbed.make_policy("exhaustive")
        )
        assert run.serving is None
        assert run.records


class TestPooledExecutors:
    def test_pooled_executor_is_reused(self, unit_testbed):
        cluster = unit_testbed.cluster
        first = cluster.pooled_executor(2, backend="thread")
        second = cluster.pooled_executor(2, backend="thread")
        assert first is second
        assert cluster.pooled_executor(3, backend="thread") is not first

    def test_process_pool_survives_across_runs(self, unit_testbed):
        """Two process-backend runs reuse one spawned pool, bit-identically.

        The regression this pins: the pooled ProcessExecutor keeps its
        worker processes (and their shard attach registries) alive between
        run_trace calls — a second run must not respawn or re-attach.
        """
        cluster = unit_testbed.cluster
        trace = unit_testbed.wikipedia_trace
        executor = cluster.pooled_executor(2, backend="process")
        assert executor.spawn_count == 0  # lazy: nothing spawned yet
        first = cluster.run_trace(
            trace, unit_testbed.make_policy("exhaustive"),
            workers=2, backend="process",
        )
        assert cluster.pooled_executor(2, backend="process") is executor
        assert executor.spawn_count == 1
        second = cluster.run_trace(
            trace, unit_testbed.make_policy("exhaustive"),
            workers=2, backend="process",
        )
        assert executor.spawn_count == 1  # reused, not respawned
        assert run_fingerprint(first) == run_fingerprint(second)
        serial = cluster.run_trace(trace, unit_testbed.make_policy("exhaustive"))
        assert run_fingerprint(first) == run_fingerprint(serial)
        cluster.close()
        assert not cluster._pooled_executors

    def test_close_is_idempotent_and_context_manager(self, unit_testbed):
        cluster = unit_testbed.cluster
        with cluster:
            cluster.pooled_executor(2, backend="thread")
        assert not cluster._pooled_executors
        cluster.close()  # second close is a no-op

    def test_override_restores_base_executor(self, unit_testbed):
        cluster = unit_testbed.cluster
        base = cluster.executor
        cluster.run_trace(
            unit_testbed.wikipedia_trace,
            unit_testbed.make_policy("exhaustive"),
            workers=2,
        )
        assert cluster.executor is base
        cluster.close()


class TestOpenLoopServing:
    def test_serve_offers_every_query(self, unit_testbed):
        run = unit_testbed.cluster.serve(
            open_loop_stream(unit_testbed, n=200),
            unit_testbed.make_policy("exhaustive"),
        )
        assert run.offered_queries == 200
        assert run.serving is not None
        assert run.serving.offered == 200
        assert run.serving.completed + run.serving.shed == 200
        assert run.elapsed_ms >= run.serving.last_arrival_ms
        assert not run.records  # streaming sink, no retention

    def test_serve_retain_records_keeps_the_list(self, unit_testbed):
        run = unit_testbed.cluster.serve(
            open_loop_stream(unit_testbed, n=50),
            unit_testbed.make_policy("exhaustive"),
            retain_records=True,
        )
        assert run.serving is None
        assert len(run.records) == 50

    def test_admission_sheds_under_overload(self, unit_testbed):
        admission = AdmissionController(AdmissionConfig(max_in_flight=2))
        run = unit_testbed.cluster.serve(
            open_loop_stream(unit_testbed, rate_qps=3000.0, n=300),
            unit_testbed.make_policy("exhaustive"),
            admission=admission,
        )
        assert run.shed_queries > 0
        assert run.shed_queue_depth == run.shed_queries
        assert run.admitted_queries + run.shed_queries == run.offered_queries
        assert run.completed_queries == run.offered_queries - run.shed_queries
        assert admission.shed == run.shed_queries

    def test_shed_records_are_flagged_and_empty(self, unit_testbed):
        run = unit_testbed.cluster.serve(
            open_loop_stream(unit_testbed, rate_qps=3000.0, n=200),
            unit_testbed.make_policy("exhaustive"),
            admission=AdmissionController(AdmissionConfig(max_in_flight=2)),
            retain_records=True,
        )
        shed = [r for r in run.records if r.shed]
        assert shed
        for record in shed:
            assert not record.result.hits
            assert record.n_selected == 0
            assert record.latency_ms == pytest.approx(0.05)

    def test_result_cache_telemetry_on_run(self, unit_testbed):
        cache = ResultCache(capacity=64)
        run = unit_testbed.cluster.serve(
            open_loop_stream(unit_testbed, rate_qps=50.0, n=300),
            unit_testbed.make_policy("exhaustive"),
            cache=cache,
        )
        # 300 Zipf draws over 40 distinct queries must repeat.
        assert run.result_cache_hits > 0
        assert run.result_cache_hits + run.result_cache_misses == 300
        assert run.result_cache_hit_rate == pytest.approx(
            run.result_cache_hits / 300.0
        )
        assert run.serving is not None
        assert run.serving.from_cache == run.result_cache_hits

    def test_deadline_shedding(self, unit_testbed):
        admission = AdmissionController(
            AdmissionConfig(deadline_slo_ms=1.0, service_estimate_ms=50.0)
        )
        run = unit_testbed.cluster.serve(
            open_loop_stream(unit_testbed, rate_qps=2000.0, n=200),
            unit_testbed.make_policy("exhaustive"),
            admission=admission,
        )
        # The seeded estimate alone busts a 1 ms SLO: everything sheds.
        assert run.shed_deadline == 200
        assert run.completed_queries == 0

    def test_goodput_accounting(self, unit_testbed):
        run = unit_testbed.cluster.serve(
            open_loop_stream(unit_testbed, rate_qps=100.0, n=150),
            unit_testbed.make_policy("exhaustive"),
        )
        assert run.goodput_qps() > 0.0
        assert run.goodput_qps() == pytest.approx(
            run.completed_queries / (run.elapsed_ms / 1000.0)
        )


def record(qid, arrival, latency, *, shed=False, from_cache=False):
    return QueryRecord(
        query=Query(query_id=qid, terms=("t001",), text="t001"),
        arrival_ms=arrival,
        latency_ms=latency,
        result=SearchResult(),
        decision=Decision(shard_ids=() if shed else (0,)),
        shed=shed,
        from_cache=from_cache,
    )


class TestServingStats:
    def test_counters_and_percentiles(self):
        stats = ServingStats()
        for i in range(100):
            stats.observe(record(i, arrival=float(i), latency=float(i + 1)))
        stats.observe(record(100, arrival=200.0, latency=0.05, shed=True))
        assert stats.completed == 100
        assert stats.shed == 1
        assert stats.offered == 101
        assert stats.last_arrival_ms == 200.0  # shed arrivals count
        assert stats.mean_latency_ms == pytest.approx(50.5)
        assert stats.max_latency_ms == 100.0
        assert 40.0 < stats.percentile_ms(50) < 62.0
        snap = stats.snapshot()
        assert snap["completed"] == 100 and snap["shed"] == 1

    def test_shed_records_do_not_pollute_latency(self):
        stats = ServingStats()
        stats.observe(record(0, arrival=0.0, latency=10.0))
        stats.observe(record(1, arrival=1.0, latency=0.05, shed=True))
        assert stats.mean_latency_ms == 10.0
        assert stats.max_latency_ms == 10.0

    def test_from_cache_counter(self):
        stats = ServingStats()
        stats.observe(record(0, arrival=0.0, latency=1.0, from_cache=True))
        assert stats.from_cache == 1


class TestDeadlineQueue:
    def test_depth_tracks_live_population(self):
        queue = DeadlineQueue()
        queue.push(1, 10.0)
        queue.push(2, 5.0)
        assert queue.depth == 2
        assert queue.earliest_deadline_ms() == 5.0
        queue.finalize(2, now_ms=4.0)
        assert queue.depth == 1
        assert 2 not in queue and 1 in queue
        assert queue.earliest_deadline_ms() == 10.0

    def test_finalize_unknown_is_noop(self):
        queue = DeadlineQueue()
        queue.finalize(99, now_ms=0.0)
        assert queue.depth == 0

    def test_count_expired(self):
        queue = DeadlineQueue()
        queue.push(1, 10.0)
        queue.push(2, 50.0)
        assert queue.count_expired(now_ms=20.0) == 1
        assert queue.count_expired(now_ms=60.0) == 2
        assert queue.depth == 2  # counting does not retire


class TestAdmissionController:
    def view(self, unit_testbed, backlog=0.0):
        from repro.cluster.types import ClusterView

        n = unit_testbed.cluster.n_shards
        return ClusterView(
            now_ms=0.0,
            n_shards=n,
            default_freq_ghz=unit_testbed.cluster.freq_scale.default_ghz,
            max_freq_ghz=unit_testbed.cluster.freq_scale.max_ghz,
            queued_predicted_ms=tuple(backlog for _ in range(n)),
        )

    def query(self, qid=0):
        return Query(query_id=qid, terms=("t001",), text="t001")

    def test_max_in_flight_gate(self, unit_testbed):
        controller = AdmissionController(AdmissionConfig(max_in_flight=1))
        view = self.view(unit_testbed)
        assert controller.admit(self.query(0), view, 0.0) is None
        controller.on_admit(0, 0.0)
        assert controller.admit(self.query(1), view, 1.0) == "queue_depth"
        controller.on_finalize(record(0, arrival=0.0, latency=2.0))
        assert controller.admit(self.query(2), view, 3.0) is None

    def test_max_queued_ms_gate(self, unit_testbed):
        controller = AdmissionController(AdmissionConfig(max_queued_ms=5.0))
        assert (
            controller.admit(self.query(), self.view(unit_testbed, 10.0), 0.0)
            == "queue_depth"
        )
        assert (
            controller.admit(self.query(), self.view(unit_testbed, 1.0), 0.0)
            is None
        )

    def test_deadline_gate_uses_backlog_plus_estimate(self, unit_testbed):
        controller = AdmissionController(
            AdmissionConfig(deadline_slo_ms=10.0, service_estimate_ms=4.0)
        )
        assert (
            controller.admit(self.query(), self.view(unit_testbed, 2.0), 0.0)
            is None
        )
        assert (
            controller.admit(self.query(), self.view(unit_testbed, 8.0), 0.0)
            == "deadline"
        )

    def test_ewma_adapts_from_counted_service(self, unit_testbed):
        controller = AdmissionController(
            AdmissionConfig(
                deadline_slo_ms=100.0, service_estimate_ms=4.0, ewma_alpha=0.5
            )
        )
        controller.on_admit(0, 0.0)
        rec = record(0, arrival=0.0, latency=20.0)
        rec.outcomes.append(
            ShardOutcome(shard_id=0, service_ms=8.0, counted=True)
        )
        controller.on_finalize(rec)
        assert controller.service_estimate_ms == pytest.approx(6.0)

    def test_expired_slo_counter(self, unit_testbed):
        controller = AdmissionController(AdmissionConfig(deadline_slo_ms=5.0))
        controller.on_admit(0, 0.0)
        controller.on_finalize(record(0, arrival=0.0, latency=9.0))
        assert controller.deadlines.expired == 1

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AdmissionConfig(max_in_flight=0)
        with pytest.raises(ValueError):
            AdmissionConfig(deadline_slo_ms=-1.0)
        with pytest.raises(ValueError):
            AdmissionConfig(ewma_alpha=0.0)
        assert AdmissionConfig(max_in_flight=4).enabled_rules() == ("queue_depth",)
        assert AdmissionConfig(deadline_slo_ms=9.0).enabled_rules() == ("deadline",)
