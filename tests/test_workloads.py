"""Unit tests for synthetic corpus and trace generation."""

import numpy as np
import pytest

from repro.workloads import (
    CORPUS_PRESETS,
    CorpusConfig,
    SyntheticCorpus,
    TraceConfig,
    build_query_pool,
    generate_trace,
    term_token,
    training_queries,
)


class TestCorpusConfig:
    def test_presets_valid(self):
        for name, config in CORPUS_PRESETS.items():
            assert config.n_docs > 0, name

    def test_validation(self):
        with pytest.raises(ValueError):
            CorpusConfig(n_docs=0)
        with pytest.raises(ValueError):
            CorpusConfig(topic_weight=1.5)
        with pytest.raises(ValueError):
            CorpusConfig(n_topics=100, topic_core_size=1000, vocab_size=2000)


class TestSyntheticCorpus:
    def test_deterministic(self, tiny_corpus):
        again = SyntheticCorpus(tiny_corpus.config)
        assert again.documents[5].text == tiny_corpus.documents[5].text

    def test_doc_count_and_ids(self, tiny_corpus):
        assert len(tiny_corpus) == tiny_corpus.config.n_docs
        assert [d.doc_id for d in tiny_corpus.documents] == list(
            range(tiny_corpus.config.n_docs)
        )

    def test_topics_assigned(self, tiny_corpus):
        topics = {d.topic for d in tiny_corpus.documents}
        assert topics <= set(range(tiny_corpus.config.n_topics))
        assert len(topics) > 1

    def test_topic_cores_disjoint(self, tiny_corpus):
        seen = set()
        for core in tiny_corpus.topic_cores:
            assert not (set(core.tolist()) & seen)
            seen.update(core.tolist())

    def test_zipf_head_is_frequent(self, tiny_corpus):
        from collections import Counter

        counts = Counter()
        for doc in tiny_corpus.documents[:100]:
            counts.update(doc.text.split())
        # The most frequent term is far more common than a mid-rank term.
        hot = counts[term_token(0)] if term_token(0) in counts else 0
        mid = counts.get(term_token(500), 0)
        assert hot > mid

    def test_topic_terms_concentrated(self, tiny_corpus):
        rng = np.random.default_rng(0)
        topic = 0
        term_ids = tiny_corpus.sample_topic_terms(topic, 3, rng)
        tokens = {term_token(t) for t in term_ids}
        in_topic = sum(
            1
            for d in tiny_corpus.documents
            if d.topic == topic and tokens & set(d.text.split())
        )
        out_topic = sum(
            1
            for d in tiny_corpus.documents
            if d.topic != topic and tokens & set(d.text.split())
        )
        n_in = sum(1 for d in tiny_corpus.documents if d.topic == topic)
        n_out = len(tiny_corpus.documents) - n_in
        assert in_topic / max(n_in, 1) > out_topic / max(n_out, 1)

    def test_sample_common_terms_are_hot(self, tiny_corpus):
        rng = np.random.default_rng(0)
        common = tiny_corpus.sample_common_terms(2, rng)
        background = tiny_corpus.sample_background_terms(2, rng)
        assert min(common) < tiny_corpus.config.vocab_size // 10
        assert all(isinstance(t, int) for t in common + background)

    def test_sample_too_many_core_terms_rejected(self, tiny_corpus):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            tiny_corpus.sample_topic_terms(0, 10_000, rng)


class TestTraces:
    def test_trace_config_validation(self):
        with pytest.raises(ValueError):
            TraceConfig(flavour="bing")
        with pytest.raises(ValueError):
            TraceConfig(duration_s=0)

    def test_pool_distinct_and_sized(self, tiny_corpus):
        config = TraceConfig(n_distinct_queries=40, seed=3)
        pool = build_query_pool(tiny_corpus, config)
        assert len(pool) == 40
        assert len(set(pool)) == 40

    def test_trace_arrivals_sorted_and_bounded(self, tiny_corpus):
        trace = generate_trace(
            tiny_corpus, TraceConfig(duration_s=5.0, arrival_rate_qps=30.0)
        )
        arrivals = [q.arrival_time for q in trace]
        assert arrivals == sorted(arrivals)
        assert arrivals[-1] <= 5.0
        # Poisson at 30 qps for 5 s: ~150 queries.
        assert 80 <= len(trace) <= 250

    def test_trace_reuses_pool_queries(self, tiny_corpus):
        trace = generate_trace(
            tiny_corpus,
            TraceConfig(duration_s=10.0, arrival_rate_qps=30.0, n_distinct_queries=10),
        )
        assert len({q.terms for q in trace}) <= 10

    def test_query_ids_sequential(self, tiny_corpus):
        trace = generate_trace(tiny_corpus, TraceConfig(duration_s=2.0))
        assert [q.query_id for q in trace] == list(range(len(trace)))

    def test_deterministic_by_seed(self, tiny_corpus):
        config = TraceConfig(duration_s=3.0, seed=9)
        a = generate_trace(tiny_corpus, config)
        b = generate_trace(tiny_corpus, config)
        assert [q.terms for q in a] == [q.terms for q in b]

    def test_lucene_queries_longer_on_average(self, tiny_corpus):
        wiki = build_query_pool(
            tiny_corpus, TraceConfig(flavour="wikipedia", n_distinct_queries=150)
        )
        lucene = build_query_pool(
            tiny_corpus, TraceConfig(flavour="lucene", n_distinct_queries=150)
        )
        assert np.mean([len(t) for t in lucene]) > np.mean([len(t) for t in wiki])

    def test_training_queries_distinct_from_trace(self, tiny_corpus):
        train = training_queries(tiny_corpus, 30, seed=101)
        assert len(train) == 30
        assert len({q.terms for q in train}) == 30
