"""The compressed ``.store`` format: bit-packing, arenas, persistence.

Three layers under test, bottom up:

* ``pack_bits``/``unpack_bits`` — fixed-width little-endian packing into
  uint64 words must round-trip any value that fits the width.
* ``CompressedPostingsArena`` — delta/bit-packed doc ids, packed tfs and
  codebook scores must decode to the *exact* int64/int32/float64 columns
  the uncompressed arena holds (same bits, including -0.0), reject
  malformed inputs, and bound its decode LRU by bytes.
* ``serialize_shard``/``open_store``/``open_store_buffer`` — the on-disk
  and shared-memory forms are the same bytes, open in O(1) (nothing
  materialized per term), survive adversarial columns, and fail loudly
  on corrupt headers.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.index import (
    CompressedPostingsArena,
    Document,
    IndexBuilder,
    IndexShard,
    PostingsArena,
    ShardTerm,
    bits_for,
    open_store,
    open_store_buffer,
    open_stores,
    pack_bits,
    pack_shards,
    serialize_shard,
    store_info,
    unpack_bits,
    write_store,
)
from repro.index.postings import PostingList
from repro.retrieval import maxscore_search, maxscore_search_kernel
from repro.scoring.similarity import BM25Similarity
from repro.text import WhitespaceAnalyzer

VOCAB = [f"w{i}" for i in range(12)]


def build_shard(word_lists: list[list[str]]) -> IndexShard:
    builder = IndexBuilder(0, analyzer=WhitespaceAnalyzer())
    for doc_id, words in enumerate(word_lists):
        builder.add(Document(doc_id=doc_id, text=" ".join(words)))
    return builder.build()


def make_shard(term_columns: dict[str, tuple[list[int], list[int]]]) -> IndexShard:
    """A hand-built shard from ``{term: (doc_ids, tfs)}`` columns."""
    similarity = BM25Similarity()
    terms = {}
    all_docs: set[int] = set()
    for name, (doc_ids, tfs) in term_columns.items():
        docs = np.asarray(doc_ids, dtype=np.int64)
        freqs = np.asarray(tfs, dtype=np.int32)
        scores = (
            similarity.scores(freqs, np.full(docs.size, 10.0), docs.size, 100, 10.0)
            if docs.size
            else np.zeros(0, dtype=np.float64)
        )
        terms[name] = ShardTerm(
            term=name,
            postings=PostingList(doc_ids=docs, tfs=freqs),
            scores=scores,
            upper_bound=float(scores.max()) if scores.size else 0.0,
        )
        all_docs.update(docs.tolist())
    return IndexShard(
        shard_id=0,
        n_docs=max(len(all_docs), 1),
        avg_doc_length=10.0,
        total_tokens=10 * max(len(all_docs), 1),
        doc_lengths={doc: 10 for doc in sorted(all_docs)},
        similarity=similarity,
        _terms=terms,
    )


def assert_columns_equal(shard: IndexShard, reopened: IndexShard) -> None:
    """Every term's decoded columns must be bit-equal, dtypes included."""
    assert sorted(reopened.terms()) == sorted(shard.terms())
    for name in shard.terms():
        original = shard.term(name)
        loaded = reopened.term(name)
        np.testing.assert_array_equal(
            loaded.postings.doc_ids, original.postings.doc_ids
        )
        np.testing.assert_array_equal(loaded.postings.tfs, original.postings.tfs)
        # Bitwise float equality (repr-level fingerprints depend on it).
        np.testing.assert_array_equal(
            loaded.scores.view(np.int64), original.scores.view(np.int64)
        )
        assert loaded.postings.doc_ids.dtype == np.int64
        assert loaded.postings.tfs.dtype == np.int32
        assert loaded.scores.dtype == np.float64
        assert loaded.upper_bound == original.upper_bound
        assert loaded.global_doc_freq == original.global_doc_freq


# ------------------------------------------------------------- bit packing
class TestBitPacking:
    @given(
        values=st.lists(st.integers(min_value=0, max_value=2**62 - 1), max_size=80)
    )
    def test_roundtrip_any_fitting_width(self, values):
        arr = np.asarray(values, dtype=np.int64)
        width = bits_for(int(arr.max()) if arr.size else 0)
        words = pack_bits(arr, width)
        np.testing.assert_array_equal(unpack_bits(words, arr.size, width), arr)

    def test_bits_for_floor_and_cap(self):
        assert bits_for(0) == 1
        assert bits_for(1) == 1
        assert bits_for(2) == 2
        assert bits_for(2**62 - 1) == 62
        with pytest.raises(ValueError):
            bits_for(2**63)

    def test_pack_rejects_values_wider_than_width(self):
        with pytest.raises(ValueError):
            pack_bits(np.array([8], dtype=np.int64), 3)

    def test_word_boundary_crossing(self):
        # Width 7 over 20 values straddles word boundaries repeatedly.
        arr = np.arange(20, dtype=np.int64) * 6 + 1
        words = pack_bits(arr, 7)
        np.testing.assert_array_equal(unpack_bits(words, 20, 7), arr)


# ------------------------------------------------------- compressed arena
class TestCompressedArena:
    def test_roundtrip_matches_uncompressed(self):
        shard = build_shard(
            [[VOCAB[min(j, i % 12)] for j in range(i % 7 + 1)] for i in range(50)]
        )
        arena = PostingsArena.from_shard(shard)
        packed = CompressedPostingsArena.from_arena(arena)
        assert packed.n_terms == arena.n_terms
        assert packed.n_postings == arena.n_postings
        for term in shard.terms():
            raw = arena.run(term)
            run = packed.run(term)
            np.testing.assert_array_equal(run.doc_ids, raw.doc_ids)
            np.testing.assert_array_equal(run.tfs, raw.tfs)
            np.testing.assert_array_equal(
                run.scores.view(np.int64), raw.scores.view(np.int64)
            )
            np.testing.assert_array_equal(run.block_maxes, raw.block_maxes)
            assert run.upper_bound == raw.upper_bound

    def test_empty_and_single_posting_terms(self):
        shard = make_shard(
            {
                "empty": ([], []),
                "single": ([7], [3]),
                "pair": ([1, 9], [1, 2]),
            }
        )
        packed = CompressedPostingsArena.from_arena(
            PostingsArena.from_shard(shard)
        )
        assert packed.run("empty").doc_ids.size == 0
        single = packed.run("single")
        np.testing.assert_array_equal(single.doc_ids, [7])
        np.testing.assert_array_equal(single.tfs, [3])
        pair = packed.run("pair")
        np.testing.assert_array_equal(pair.doc_ids, [1, 9])

    def test_maximal_doc_id_delta(self):
        # One gap of nearly 2**62: the widest delta the format can see.
        shard = make_shard({"wide": ([0, 2**62 - 1], [1, 1])})
        packed = CompressedPostingsArena.from_arena(
            PostingsArena.from_shard(shard)
        )
        np.testing.assert_array_equal(
            packed.run("wide").doc_ids, [0, 2**62 - 1]
        )

    def test_non_monotonic_doc_ids_rejected(self):
        arena = PostingsArena(
            terms=["bad"],
            offsets=np.array([0, 2], dtype=np.int64),
            doc_ids=np.array([9, 3], dtype=np.int64),
            tfs=np.array([1, 1], dtype=np.int32),
            scores=np.array([0.5, 0.5], dtype=np.float64),
            upper_bounds=np.array([0.5], dtype=np.float64),
            block_maxes=np.array([0.5], dtype=np.float64),
            block_offsets=np.array([0, 1], dtype=np.int64),
            block_size=64,
        )
        with pytest.raises(ValueError, match="strictly increasing"):
            CompressedPostingsArena.from_arena(arena)

    def test_negative_doc_id_rejected(self):
        arena = PostingsArena(
            terms=["neg"],
            offsets=np.array([0, 1], dtype=np.int64),
            doc_ids=np.array([-4], dtype=np.int64),
            tfs=np.array([1], dtype=np.int32),
            scores=np.array([0.5], dtype=np.float64),
            upper_bounds=np.array([0.5], dtype=np.float64),
            block_maxes=np.array([0.5], dtype=np.float64),
            block_offsets=np.array([0, 1], dtype=np.int64),
            block_size=64,
        )
        with pytest.raises(ValueError, match="negative doc id"):
            CompressedPostingsArena.from_arena(arena)

    def test_negative_zero_scores_survive(self):
        """-0.0 != 0.0 under repr(); the codebook must not merge them."""
        shard = make_shard({"z": ([1, 2, 3], [1, 1, 1])})
        shard.term("z").scores[:] = [0.0, -0.0, 0.0]
        packed = CompressedPostingsArena.from_arena(
            PostingsArena.from_shard(shard)
        )
        decoded = packed.run("z").scores
        assert [repr(s) for s in decoded.tolist()] == ["0.0", "-0.0", "0.0"]

    def test_decode_cache_bounded_and_counted(self):
        shard = build_shard([[VOCAB[i % 12]] * 3 for i in range(60)])
        packed = CompressedPostingsArena.from_arena(
            PostingsArena.from_shard(shard), cache_bytes=2048
        )
        for term in sorted(shard.terms()) * 2:
            packed.run(term)
        stats = packed.decode_stats
        assert stats.bytes <= 2048 or stats.entries == 1
        assert stats.hits + stats.misses == 2 * len(shard.terms())
        assert stats.misses >= len(shard.terms())

    def test_decode_evictions_counted(self):
        """A budget below any single column pins the LRU at its one-entry
        floor, so every subsequent decode evicts the previous term —
        and the counter must account for exactly those."""
        shard = build_shard([[VOCAB[i % 12]] * 3 for i in range(60)])
        packed = CompressedPostingsArena.from_arena(
            PostingsArena.from_shard(shard), cache_bytes=1
        )
        for term in sorted(shard.terms()):
            packed.run(term)
        stats = packed.decode_stats
        assert stats.entries == 1
        assert stats.evictions == stats.misses - stats.entries

    def test_set_cache_budget_shrink_evicts_immediately(self):
        shard = build_shard([[VOCAB[i % 12]] * 3 for i in range(60)])
        packed = CompressedPostingsArena.from_arena(
            PostingsArena.from_shard(shard)
        )
        decoded = {t: packed.run(t).scores.tolist() for t in sorted(shard.terms())}
        assert packed.decode_stats.evictions == 0
        packed.set_cache_budget(1)
        stats = packed.decode_stats
        assert stats.entries == 1
        assert stats.evictions == stats.misses - stats.entries
        # Eviction only drops cached columns — re-decodes stay bit-exact.
        for term, want in decoded.items():
            assert packed.run(term).scores.tolist() == want


# ------------------------------------------------------------ persistence
class TestStoreRoundTrip:
    @pytest.fixture(scope="class")
    def shard(self):
        return build_shard(
            [[VOCAB[min(j, i % 12)] for j in range(i % 7 + 1)] for i in range(60)]
        )

    def test_file_roundtrip(self, shard, tmp_path):
        path = write_store(shard, tmp_path / "s.store")
        reopened = open_store(path)
        assert_columns_equal(shard, reopened)
        assert reopened.n_docs == shard.n_docs
        assert reopened.avg_doc_length == shard.avg_doc_length
        assert reopened.doc_lengths == shard.doc_lengths
        assert type(reopened.similarity) is type(shard.similarity)

    def test_buffer_is_same_bytes_as_file(self, shard, tmp_path):
        path = write_store(shard, tmp_path / "s.store")
        blob = serialize_shard(shard)
        assert path.read_bytes() == blob
        reopened = open_store_buffer(blob)
        assert_columns_equal(shard, reopened)

    def test_open_is_lazy(self, shard, tmp_path):
        path = write_store(shard, tmp_path / "s.store")
        reopened = open_store(path)
        assert reopened._terms == {}
        reopened.term(VOCAB[0])
        assert list(reopened._terms) == [VOCAB[0]]

    def test_search_fingerprints_match(self, shard, tmp_path):
        path = write_store(shard, tmp_path / "s.store")
        reopened = open_store(path)
        for terms in ([VOCAB[0], VOCAB[1]], [VOCAB[3]], ["oov"]):
            want = maxscore_search(shard, list(terms), 10).fingerprint()
            assert maxscore_search(reopened, list(terms), 10).fingerprint() == want
            assert (
                maxscore_search_kernel(reopened, list(terms), 10).fingerprint()
                == maxscore_search_kernel(shard, list(terms), 10).fingerprint()
            )

    def test_adversarial_columns_roundtrip(self, tmp_path):
        shard = make_shard(
            {
                "empty": ([], []),
                "one": ([2**61], [24]),
                "wide": ([0, 2**62 - 1], [1, 1]),
                "dense": (list(range(64)), [1] * 64),
            }
        )
        reopened = open_store(write_store(shard, tmp_path / "adv.store"))
        assert_columns_equal(shard, reopened)

    def test_corrupt_magic_rejected(self, shard, tmp_path):
        path = write_store(shard, tmp_path / "s.store")
        blob = bytearray(path.read_bytes())
        blob[:4] = b"XXXX"
        path.write_bytes(bytes(blob))
        with pytest.raises(ValueError, match="magic"):
            open_store(path)

    def test_truncated_file_rejected(self, shard, tmp_path):
        path = write_store(shard, tmp_path / "s.store")
        path.write_bytes(path.read_bytes()[:40])
        with pytest.raises(ValueError):
            open_store(path)

    def test_newline_in_term_rejected(self):
        shard = make_shard({"bad\nterm": ([1], [1])})
        with pytest.raises(ValueError, match="newline"):
            serialize_shard(shard)

    def test_pack_and_open_directory(self, tmp_path):
        shards = [
            build_shard([[VOCAB[i % 12]] * (s + 1) for i in range(20)])
            for s in range(3)
        ]
        for shard_id, shard in enumerate(shards):
            shard.shard_id = shard_id
        paths = pack_shards(shards, tmp_path / "packed")
        assert [p.name for p in paths] == [
            "shard_0.store", "shard_1.store", "shard_2.store",
        ]
        reopened = open_stores(tmp_path / "packed")
        assert [s.shard_id for s in reopened] == [0, 1, 2]
        for shard, loaded in zip(shards, reopened):
            assert_columns_equal(shard, loaded)

    def test_store_info(self, shard, tmp_path):
        path = write_store(shard, tmp_path / "s.store")
        info = store_info(path)
        assert info["meta"]["n_docs"] == shard.n_docs
        assert info["file_bytes"] == path.stat().st_size
        assert info["raw_column_bytes"] == info["meta"]["n_postings"] * 20
        assert info["compression_ratio"] > 0


# -------------------------------------------------- property-based sweep
documents = st.lists(
    st.lists(st.sampled_from(VOCAB), min_size=1, max_size=25),
    min_size=1,
    max_size=40,
)


class TestPropertyRoundTrip:
    @given(docs=documents)
    def test_serialize_reopen_is_identity(self, docs):
        shard = build_shard(docs)
        reopened = open_store_buffer(serialize_shard(shard))
        assert_columns_equal(shard, reopened)
        assert reopened.doc_lengths == shard.doc_lengths
