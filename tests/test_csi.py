"""Unit tests for the Central Sample Index."""

import pytest

from repro.index import CentralSampleIndex, Document, partition_round_robin
from repro.text import WhitespaceAnalyzer


def groups(n_docs=100, n_shards=4):
    docs = [
        Document(doc_id=i, text=f"common t{i % 13} t{i % 7}") for i in range(n_docs)
    ]
    return partition_round_robin(docs, n_shards)


class TestBuild:
    def test_min_per_shard_guards_small_shards(self):
        csi = CentralSampleIndex.build(
            groups(), sample_rate=0.01, min_per_shard=5, analyzer=WhitespaceAnalyzer()
        )
        assert len(csi) == 20  # 4 shards x 5 docs
        assert csi.n_shards == 4

    def test_sample_rate_honoured_when_larger(self):
        csi = CentralSampleIndex.build(
            groups(400, 2), sample_rate=0.1, min_per_shard=1,
            analyzer=WhitespaceAnalyzer(),
        )
        assert len(csi) == 40

    def test_doc_to_shard_mapping_correct(self):
        the_groups = groups()
        csi = CentralSampleIndex.build(the_groups, analyzer=WhitespaceAnalyzer())
        for doc_id, shard_id in csi.doc_to_shard.items():
            assert any(d.doc_id == doc_id for d in the_groups[shard_id])

    def test_deterministic_by_seed(self):
        a = CentralSampleIndex.build(groups(), seed=3, analyzer=WhitespaceAnalyzer())
        b = CentralSampleIndex.build(groups(), seed=3, analyzer=WhitespaceAnalyzer())
        assert a.doc_to_shard == b.doc_to_shard

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            CentralSampleIndex.build(groups(), sample_rate=0.0)

    def test_empty_shard_skipped(self):
        the_groups = groups(n_shards=3) + [[]]
        csi = CentralSampleIndex.build(the_groups, analyzer=WhitespaceAnalyzer())
        assert csi.n_shards == 4
        assert all(sid < 3 for sid in csi.doc_to_shard.values())


class TestSearch:
    def test_hits_carry_home_shard(self):
        csi = CentralSampleIndex.build(groups(), analyzer=WhitespaceAnalyzer())
        hits = csi.search(["common"], k=10)
        assert hits
        for hit in hits:
            assert hit.shard_id == csi.doc_to_shard[hit.doc_id]
            assert hit.score > 0

    def test_unknown_term_no_hits(self):
        csi = CentralSampleIndex.build(groups(), analyzer=WhitespaceAnalyzer())
        assert csi.search(["nonexistent"], k=10) == []
