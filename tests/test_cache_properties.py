"""Model-based property test: ResultCache vs a reference LRU."""

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ResultCache
from repro.retrieval.result import SearchResult


class ReferenceLRU:
    """Straight-line LRU used as the oracle."""

    def __init__(self, capacity):
        self.capacity = capacity
        self.data: OrderedDict = OrderedDict()

    def get(self, key):
        if key in self.data:
            self.data.move_to_end(key)
            return self.data[key]
        return None

    def put(self, key, value):
        if key in self.data:
            self.data.move_to_end(key)
        self.data[key] = value
        while len(self.data) > self.capacity:
            self.data.popitem(last=False)


@settings(max_examples=200, deadline=None)
@given(
    capacity=st.integers(1, 8),
    ops=st.lists(
        st.tuples(
            st.sampled_from(["get", "put"]),
            st.integers(0, 12),
            st.sampled_from([2, 10]),
        ),
        min_size=1,
        max_size=80,
    ),
)
def test_cache_matches_reference_lru(capacity, ops):
    cache = ResultCache(capacity=capacity)
    reference = ReferenceLRU(capacity)
    clock = 0.0
    for op, key_id, k in ops:
        clock += 1.0
        terms = (f"t{key_id}",)
        if op == "get":
            got = cache.get(terms, k, clock)
            expected = reference.get((terms, k))
            if expected is None:
                assert got is None
            else:
                assert got is not None and got.hits == expected.hits
        else:
            value = SearchResult(hits=[(key_id, float(key_id))])
            cache.put(terms, k, value, clock)
            reference.put((terms, k), value)
    assert len(cache) == len(reference.data)
    assert set(reference.data) == {
        key
        for key in (
            ((f"t{i}",), k) for i in range(13) for k in (2, 10)
        )
        if key in cache
    }
