"""Unit + integration tests for ISN-side frequency governors."""

import numpy as np
import pytest

from repro.cluster import (
    AssignedFrequencyGovernor,
    CostModel,
    FrequencyScale,
    GOVERNORS,
    RaceToIdleGovernor,
    SlackGovernor,
)
from repro.retrieval.result import CostStats

SCALE = FrequencyScale()
COST_MODEL = CostModel()


def cost_for_service_ms(target_ms, freq=SCALE.default_ghz):
    """A CostStats whose service time at ``freq`` is ~target_ms."""
    cycles = target_ms * freq * 1e6 - COST_MODEL.fixed_cycles
    docs = max(int(cycles / COST_MODEL.cycles_per_doc), 0)
    return CostStats(docs_evaluated=docs)


class TestAssigned:
    def test_obeys_assignment(self):
        governor = AssignedFrequencyGovernor()
        assert governor.frequency_for(CostStats(), 2.7, 100.0, COST_MODEL, SCALE) == 2.7
        assert governor.frequency_for(CostStats(), 2.1, None, COST_MODEL, SCALE) == 2.1

    def test_clamps_to_ladder(self):
        governor = AssignedFrequencyGovernor()
        assert governor.frequency_for(CostStats(), 2.0, None, COST_MODEL, SCALE) == 2.1


class TestRaceToIdle:
    def test_always_max(self):
        governor = RaceToIdleGovernor()
        assert governor.frequency_for(CostStats(), 1.2, None, COST_MODEL, SCALE) == 2.7


class TestSlack:
    def test_loose_deadline_downclocks(self):
        governor = SlackGovernor(margin=1.0)
        cost = cost_for_service_ms(10.0)  # 10 ms at default
        # 100 ms of slack: the minimum frequency suffices.
        freq = governor.frequency_for(cost, 2.1, 100.0, COST_MODEL, SCALE)
        assert freq == SCALE.min_ghz

    def test_tight_deadline_upclocks(self):
        governor = SlackGovernor(margin=1.0)
        cost = cost_for_service_ms(10.0)
        freq = governor.frequency_for(cost, 2.1, 9.0, COST_MODEL, SCALE)
        assert freq > 2.1

    def test_chosen_frequency_meets_deadline(self):
        governor = SlackGovernor(margin=1.0)
        for target in (2.0, 5.0, 12.0, 30.0):
            for remaining in (3.0, 8.0, 20.0, 60.0):
                cost = cost_for_service_ms(target)
                freq = governor.frequency_for(cost, 2.1, remaining, COST_MODEL, SCALE)
                service = COST_MODEL.service_ms(cost, freq)
                if freq < SCALE.max_ghz:
                    # Whenever it could choose, the deadline is met.
                    assert service <= remaining + 1e-9

    def test_already_late_sprints(self):
        governor = SlackGovernor()
        freq = governor.frequency_for(CostStats(), 2.1, 0.0, COST_MODEL, SCALE)
        assert freq == SCALE.max_ghz

    def test_no_deadline_falls_back_to_assignment(self):
        governor = SlackGovernor()
        assert governor.frequency_for(CostStats(), 2.4, None, COST_MODEL, SCALE) == 2.4

    def test_margin_validation(self):
        with pytest.raises(ValueError):
            SlackGovernor(margin=0.0)


class TestRegistry:
    def test_all_constructible(self):
        for name, cls in GOVERNORS.items():
            assert cls().name == name


class TestEndToEnd:
    def test_slack_governor_saves_power_at_same_quality(self, unit_testbed):
        trace = unit_testbed.wikipedia_trace
        truth = unit_testbed.truth_for(trace)
        from repro.metrics import summarize_run

        assigned = summarize_run(
            unit_testbed.cluster.run_trace(
                trace, unit_testbed.make_policy("cottage"),
                governor=AssignedFrequencyGovernor(),
            ),
            truth,
        )
        slack = summarize_run(
            unit_testbed.cluster.run_trace(
                trace, unit_testbed.make_policy("cottage"),
                governor=SlackGovernor(),
            ),
            truth,
        )
        assert slack.avg_power_w < assigned.avg_power_w
        assert slack.avg_precision >= assigned.avg_precision - 0.05

    def test_race_to_idle_fastest(self, unit_testbed):
        trace = unit_testbed.wikipedia_trace
        race = unit_testbed.cluster.run_trace(
            trace, unit_testbed.make_policy("exhaustive"),
            governor=RaceToIdleGovernor(),
        )
        default = unit_testbed.cluster.run_trace(
            trace, unit_testbed.make_policy("exhaustive")
        )
        assert np.mean(race.latencies_ms()) < np.mean(default.latencies_ms())
