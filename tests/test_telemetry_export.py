"""Exporter validation: Chrome trace round-trip, JSONL, flamegraph.

The Chrome trace export is checked the way Perfetto would consume it:
serialized to JSON, re-parsed with ``json.loads``, then the B/E nesting
and timestamp invariants are verified on the re-parsed events.
"""

import json

import pytest

from repro.telemetry import (
    Telemetry,
    chrome_trace_events,
    flamegraph_summary,
    span_record,
    validate_chrome_trace,
    write_chrome_trace,
    write_spans_jsonl,
)


@pytest.fixture(scope="module")
def traced_run(unit_testbed):
    """One cottage run on the unit testbed with telemetry enabled."""
    telemetry = Telemetry()
    result = unit_testbed.cluster.run_trace(
        unit_testbed.wikipedia_trace,
        unit_testbed.make_policy("cottage"),
        telemetry=telemetry,
    )
    return telemetry, result


class TestChromeTraceExport:
    def test_round_trip_validates(self, traced_run, tmp_path):
        telemetry, _ = traced_run
        path = tmp_path / "trace.json"
        count = write_chrome_trace(telemetry, path)
        assert count > 0
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["displayTimeUnit"] == "ms"
        events = payload["traceEvents"]
        assert len(events) == count
        validate_chrome_trace(events)

    def test_one_track_per_isn_plus_aggregator(self, traced_run, unit_testbed):
        telemetry, _ = traced_run
        events = chrome_trace_events(telemetry)
        names = {
            event["args"]["name"]: event["tid"]
            for event in events
            if event.get("ph") == "M" and event.get("name") == "thread_name"
        }
        assert names["aggregator"] == 0  # pinned first
        isn_tracks = {n for n in names if n.startswith("isn.")}
        assert len(isn_tracks) == unit_testbed.cluster.n_shards
        # tids are distinct.
        assert len(set(names.values())) == len(names)

    def test_nesting_balanced_per_track(self, traced_run):
        telemetry, _ = traced_run
        events = chrome_trace_events(telemetry)
        depth: dict[int, int] = {}
        for event in events:
            if event.get("ph") == "B":
                depth[event["tid"]] = depth.get(event["tid"], 0) + 1
            elif event.get("ph") == "E":
                depth[event["tid"]] = depth.get(event["tid"], 0) - 1
                assert depth[event["tid"]] >= 0
        assert all(value == 0 for value in depth.values())

    def test_timestamps_monotonic_per_track(self, traced_run):
        telemetry, _ = traced_run
        last: dict[int, float] = {}
        for event in chrome_trace_events(telemetry):
            if event.get("ph") == "M":
                continue
            tid = event["tid"]
            assert event["ts"] >= last.get(tid, float("-inf"))
            last[tid] = event["ts"]

    def test_async_lifecycles_have_matched_ids(self, traced_run):
        telemetry, result = traced_run
        begins, ends = [], []
        for event in chrome_trace_events(telemetry):
            if event.get("cat") == "query":
                (begins if event["ph"] == "b" else ends).append(event["id"])
        # One lifecycle per non-cached query record.
        assert len(begins) == len(result.records)
        assert sorted(begins) == sorted(ends)

    def test_validator_rejects_broken_streams(self):
        base = {"pid": 1, "tid": 0}
        with pytest.raises(ValueError, match="E without open B"):
            validate_chrome_trace([{"ph": "E", "ts": 1.0, **base}])
        with pytest.raises(ValueError, match="unclosed B"):
            validate_chrome_trace([{"ph": "B", "name": "x", "ts": 1.0, **base}])
        with pytest.raises(ValueError, match="backwards"):
            validate_chrome_trace(
                [
                    {"ph": "B", "name": "x", "ts": 5.0, **base},
                    {"ph": "E", "ts": 1.0, **base},
                ]
            )
        with pytest.raises(ValueError, match="missing numeric ts"):
            validate_chrome_trace([{"ph": "B", "name": "x", **base}])
        with pytest.raises(ValueError, match="async end without begin"):
            validate_chrome_trace(
                [{"ph": "e", "ts": 1.0, "cat": "query", "id": 9, **base}]
            )


class TestJsonlExport:
    def test_one_parseable_line_per_span(self, traced_run, tmp_path):
        telemetry, _ = traced_run
        path = tmp_path / "spans.jsonl"
        count = write_spans_jsonl(telemetry, path)
        lines = path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == count == len(telemetry.tracer.spans)
        records = [json.loads(line) for line in lines]
        assert {r["name"] for r in records} >= {
            "isn.service", "aggregator.merge", "policy.predict", "query",
        }
        for record in records:
            assert record["sim_ms"] >= 0.0
            assert record["wall_ms"] >= 0.0

    def test_span_record_attrs_are_json_safe(self):
        telemetry = Telemetry()
        span = telemetry.tracer.span("x", track="t", obj=object(), n=3)
        span.finish()
        record = span_record(span)
        json.dumps(record)  # must not raise
        assert record["attrs"]["n"] == 3


class TestFlamegraph:
    def test_summary_renders_expected_rows(self, traced_run):
        telemetry, result = traced_run
        text = flamegraph_summary(telemetry)
        assert "isn.service" in text
        assert "cluster.replay" in text
        assert f"{len(result.records)} query lifecycles" in text

    def test_empty_session(self):
        assert flamegraph_summary(Telemetry()) == "(no spans recorded)"

    def test_row_cap(self, traced_run):
        telemetry, _ = traced_run
        text = flamegraph_summary(telemetry, max_rows=3)
        assert len(text.splitlines()) <= 3 + 6  # header + track labels + footer
