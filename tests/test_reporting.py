"""Tests for the ASCII chart helpers."""

import pytest

from repro.reporting import (
    bar_chart,
    histogram_chart,
    scatter_plot,
    series_chart,
    sparkline,
)


class TestBarChart:
    def test_scales_to_max(self):
        chart = bar_chart([("a", 10.0), ("b", 5.0)], width=10)
        lines = chart.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_labels_aligned(self):
        chart = bar_chart([("short", 1.0), ("a-longer-label", 2.0)])
        starts = [line.index("|") for line in chart.splitlines()]
        assert len(set(starts)) == 1

    def test_zero_values(self):
        chart = bar_chart([("a", 0.0), ("b", 0.0)])
        assert "#" not in chart

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart([])
        with pytest.raises(ValueError):
            bar_chart([("a", 1.0)], width=0)


class TestHistogramChart:
    def test_renders_bins(self):
        chart = histogram_chart([(0.0, 5.0, 4), (5.0, 10.0, 2)], width=8)
        lines = chart.splitlines()
        assert lines[0].count("#") == 8
        assert lines[1].count("#") == 4

    def test_empty(self):
        assert "empty" in histogram_chart([])


class TestSparkline:
    def test_monotone_rises(self):
        line = sparkline([1.0, 2.0, 3.0, 4.0])
        assert len(line) == 4
        assert line[0] < line[-1]

    def test_flat_series(self):
        assert sparkline([2.0, 2.0, 2.0]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""


class TestScatterPlot:
    def test_contains_extremes(self):
        points = [(0.0, 0.0), (10.0, 1.0), (5.0, 0.5)]
        plot = scatter_plot(points, width=20, height=6)
        assert "0.00" in plot and "1.00" in plot

    def test_point_count_preserved_in_density(self):
        # A single hot cell renders darker than a single point.
        sparse = scatter_plot([(0, 0), (1, 1)], width=10, height=4)
        assert sparse.count("@") <= 2

    def test_no_points(self):
        assert "no points" in scatter_plot([])

    def test_validation(self):
        with pytest.raises(ValueError):
            scatter_plot([(0, 0)], width=1)


class TestSeriesChart:
    def test_one_line_per_series(self):
        chart = series_chart(
            {"a": [(0.0, 1.0), (1.0, 2.0)], "b": [(0.0, 3.0)]}
        )
        assert len(chart.splitlines()) == 2
        assert "[1.0 .. 2.0]" in chart

    def test_resamples_long_series(self):
        points = [(float(i), float(i % 7)) for i in range(500)]
        chart = series_chart({"x": points}, width=30)
        # Label + sparkline + range annotation fit one line.
        assert len(chart.splitlines()) == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            series_chart({})
