"""Unit/integration tests for the Cottage policy and its variants.

These use the session-scoped trained unit testbed: Cottage requires a
trained predictor bank, and its decisions are only meaningful against the
real index statistics.
"""

import pytest

from repro.cluster.types import ClusterView
from repro.core import CottageISNPolicy, CottagePolicy, CottageWithoutMLPolicy


def idle_view(testbed, queue=None):
    n = testbed.cluster.n_shards
    return ClusterView(
        now_ms=0.0,
        n_shards=n,
        default_freq_ghz=testbed.cluster.freq_scale.default_ghz,
        max_freq_ghz=testbed.cluster.freq_scale.max_ghz,
        queued_predicted_ms=tuple(queue if queue is not None else [0.0] * n),
    )


@pytest.fixture(scope="module")
def cottage(unit_testbed):
    return CottagePolicy(unit_testbed.bank, network=unit_testbed.cluster.network)


class TestCottageDecide:
    def test_produces_budget_and_subset(self, unit_testbed, cottage):
        query = unit_testbed.wikipedia_trace[0]
        decision = cottage.decide(query, idle_view(unit_testbed))
        assert decision.shard_ids
        assert decision.time_budget_ms is not None and decision.time_budget_ms > 0
        assert decision.coordination_delay_ms > 0
        assert set(decision.frequency_overrides) <= set(decision.shard_ids)

    def test_budget_covers_kept_boosted_latencies(self, unit_testbed, cottage):
        query = unit_testbed.wikipedia_trace[0]
        view = idle_view(unit_testbed)
        inputs = {i.shard_id: i for i in cottage.budget_inputs(query, view)}
        decision = cottage.decide(query, view)
        for sid in decision.shard_ids:
            assert (
                inputs[sid].latency_boosted_ms
                <= decision.time_budget_ms + 1e-9
            )

    def test_queue_raises_equivalent_latency(self, unit_testbed, cottage):
        query = unit_testbed.wikipedia_trace[0]
        idle = cottage.budget_inputs(query, idle_view(unit_testbed))
        n = unit_testbed.cluster.n_shards
        busy = cottage.budget_inputs(
            query, idle_view(unit_testbed, queue=[50.0] * n)
        )
        for a, b in zip(idle, busy):
            assert b.latency_current_ms > a.latency_current_ms
            assert b.latency_boosted_ms > a.latency_boosted_ms

    def test_budget_slack_scales_budget(self, unit_testbed):
        query = unit_testbed.wikipedia_trace[0]
        tight = CottagePolicy(unit_testbed.bank, budget_slack=1.0)
        loose = CottagePolicy(unit_testbed.bank, budget_slack=1.5)
        view = idle_view(unit_testbed)
        budget_tight = tight.decide(query, view).time_budget_ms
        budget_loose = loose.decide(query, view).time_budget_ms
        assert budget_loose == pytest.approx(budget_tight * 1.5)

    def test_confidence_gate_keeps_more(self, unit_testbed):
        argmax = CottagePolicy(unit_testbed.bank, cut_confidence=0.0,
                               half_cut_confidence=0.0)
        gated = CottagePolicy(unit_testbed.bank, cut_confidence=0.99,
                              half_cut_confidence=0.99)
        view = idle_view(unit_testbed)
        total_argmax = total_gated = 0
        for query in list({q.terms: q for q in unit_testbed.wikipedia_trace}.values())[:20]:
            total_argmax += len(argmax.decide(query, view).shard_ids)
            total_gated += len(gated.decide(query, view).shard_ids)
        assert total_gated >= total_argmax

    def test_disable_boost_removes_overrides(self, unit_testbed):
        policy = CottagePolicy(unit_testbed.bank, enable_boost=False)
        view = idle_view(unit_testbed)
        for query in list({q.terms: q for q in unit_testbed.wikipedia_trace}.values())[:10]:
            assert policy.decide(query, view).frequency_overrides == {}

    def test_pivot_on_full_k_never_cheaper_budget(self, unit_testbed):
        paper = CottagePolicy(unit_testbed.bank)
        conservative = CottagePolicy(unit_testbed.bank, pivot_on_full_k=True)
        view = idle_view(unit_testbed)
        for query in list({q.terms: q for q in unit_testbed.wikipedia_trace}.values())[:10]:
            a = paper.decide(query, view)
            b = conservative.decide(query, view)
            if a.time_budget_ms and b.time_budget_ms:
                assert b.time_budget_ms >= a.time_budget_ms - 1e-9

    def test_untrained_bank_rejected(self, unit_testbed):
        from repro.predictors import PredictorBank

        bank = PredictorBank(unit_testbed.cluster)
        with pytest.raises(ValueError):
            CottagePolicy(bank)

    def test_parameter_validation(self, unit_testbed):
        with pytest.raises(ValueError):
            CottagePolicy(unit_testbed.bank, budget_slack=0.5)
        with pytest.raises(ValueError):
            CottagePolicy(unit_testbed.bank, cut_confidence=1.5)


class TestCottageWithoutML:
    def test_uses_gamma_counts(self, unit_testbed):
        policy = CottageWithoutMLPolicy(
            unit_testbed.bank, unit_testbed.taily_estimator
        )
        query = unit_testbed.wikipedia_trace[0]
        inputs = policy.budget_inputs(query, idle_view(unit_testbed))
        gamma = unit_testbed.taily_estimator.quality_counts(
            query.terms, unit_testbed.bank.k
        )
        assert [i.quality_k for i in inputs] == gamma

    def test_decides(self, unit_testbed):
        policy = CottageWithoutMLPolicy(
            unit_testbed.bank, unit_testbed.taily_estimator
        )
        decision = policy.decide(unit_testbed.wikipedia_trace[0], idle_view(unit_testbed))
        assert decision.shard_ids


class TestCottageISN:
    def test_no_budget_ever(self, unit_testbed):
        policy = CottageISNPolicy(unit_testbed.bank)
        view = idle_view(unit_testbed)
        for query in list({q.terms: q for q in unit_testbed.wikipedia_trace}.values())[:10]:
            decision = policy.decide(query, view)
            assert decision.time_budget_ms is None
            assert decision.shard_ids

    def test_local_boost_when_backlogged(self, unit_testbed):
        policy = CottageISNPolicy(unit_testbed.bank, boost_over_average=1.0)
        n = unit_testbed.cluster.n_shards
        query = unit_testbed.wikipedia_trace[0]
        backlogged = policy.decide(
            query, idle_view(unit_testbed, queue=[1000.0] * n)
        )
        # Every participating ISN sees a huge local queue and boosts itself.
        assert set(backlogged.frequency_overrides) == set(backlogged.shard_ids)

    def test_observe_updates_running_mean(self, unit_testbed):
        from repro.cluster.types import Decision, QueryRecord, ShardOutcome
        from repro.retrieval import Query, SearchResult

        policy = CottageISNPolicy(unit_testbed.bank)
        before = policy._mean_service_ms[0]
        record = QueryRecord(
            query=Query(query_id=0, terms=("x",)),
            arrival_ms=0.0,
            latency_ms=5.0,
            result=SearchResult(),
            decision=Decision(shard_ids=(0,)),
            outcomes=[ShardOutcome(shard_id=0, service_ms=99.0, completed=True)],
        )
        policy.observe(record)
        assert policy._mean_service_ms[0] != before
