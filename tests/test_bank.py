"""Tests for the predictor bank and its datasets (trained unit testbed)."""

import numpy as np
import pytest

from repro.metrics import GroundTruth
from repro.predictors import (
    PredictorBank,
    build_latency_dataset,
    build_quality_dataset,
)


class TestDatasets:
    def test_quality_dataset_shapes(self, unit_testbed, unit_train_queries):
        truth = GroundTruth.build(
            unit_testbed.cluster.searcher, unit_train_queries, k=unit_testbed.cluster.k
        )
        ds = build_quality_dataset(
            0, unit_testbed.bank.stats_indexes[0], unit_train_queries, truth
        )
        n = len(unit_train_queries)
        assert ds.features.shape == (n, 10)
        assert ds.labels_k.shape == (n,)
        assert (ds.labels_half_k <= ds.labels_k).all()

    def test_latency_dataset_positive_service(self, unit_testbed, unit_train_queries):
        ds = build_latency_dataset(
            0, unit_testbed.bank.stats_indexes[0], unit_testbed.cluster,
            unit_train_queries,
        )
        assert (ds.service_ms > 0).all()
        assert ds.features.shape == (len(unit_train_queries), 15)

    def test_split_disjoint_and_complete(self, unit_testbed, unit_train_queries):
        truth = GroundTruth.build(
            unit_testbed.cluster.searcher, unit_train_queries, k=unit_testbed.cluster.k
        )
        ds = build_quality_dataset(
            0, unit_testbed.bank.stats_indexes[0], unit_train_queries, truth
        )
        train, test = ds.split(0.25, seed=1)
        assert len(train.labels_k) + len(test.labels_k) == len(ds.labels_k)
        assert len(test.labels_k) == round(0.25 * len(ds.labels_k))

    def test_split_validation(self, unit_testbed, unit_train_queries):
        truth = GroundTruth.build(
            unit_testbed.cluster.searcher, unit_train_queries, k=unit_testbed.cluster.k
        )
        ds = build_quality_dataset(
            0, unit_testbed.bank.stats_indexes[0], unit_train_queries, truth
        )
        with pytest.raises(ValueError):
            ds.split(1.5)


class TestPredictorBank:
    def test_training_report_complete(self, unit_testbed):
        report = unit_testbed.training_report
        n = unit_testbed.cluster.n_shards
        assert len(report.quality_accuracy) == n
        assert len(report.latency_accuracy) == n
        assert 0.0 < report.mean_quality_accuracy <= 1.0
        assert 0.0 < report.mean_latency_accuracy <= 1.0

    def test_predict_shape_and_bounds(self, unit_testbed):
        query = unit_testbed.wikipedia_trace[0]
        predictions = unit_testbed.bank.predict(query)
        assert len(predictions) == unit_testbed.cluster.n_shards
        for p in predictions:
            assert 0 <= p.quality_k <= unit_testbed.bank.k
            assert 0 <= p.quality_half_k <= max(unit_testbed.bank.k // 2, 1)
            assert p.service_default_ms > 0
            assert 0.0 <= p.p_zero_k <= 1.0

    def test_predictions_cached(self, unit_testbed):
        query = unit_testbed.wikipedia_trace[0]
        assert unit_testbed.bank.predict(query) is unit_testbed.bank.predict(query)

    def test_untrained_predict_rejected(self, unit_testbed):
        bank = PredictorBank(unit_testbed.cluster)
        with pytest.raises(RuntimeError):
            bank.predict(unit_testbed.wikipedia_trace[0])

    def test_train_requires_enough_queries(self, unit_testbed):
        bank = PredictorBank(unit_testbed.cluster)
        with pytest.raises(ValueError):
            bank.train(list(unit_testbed.wikipedia_trace)[:3])

    def test_latency_predictions_correlate_with_truth(self, unit_testbed):
        # Spearman-ish check: predicted service times order real ones.
        queries = list({q.terms: q for q in unit_testbed.wikipedia_trace}.values())[:25]
        predicted = []
        actual = []
        for query in queries:
            predicted.append(unit_testbed.bank.predict(query)[0].service_default_ms)
            actual.append(unit_testbed.cluster.service_time_ms(query, 0))
        correlation = np.corrcoef(predicted, actual)[0, 1]
        assert correlation > 0.6

    def test_coordination_overhead_subms(self, unit_testbed):
        assert 0.0 < unit_testbed.bank.coordination_overhead_ms() < 1.0
