"""Unit tests for index construction and collection statistics."""

import numpy as np
import pytest

from repro.index import (
    CollectionStats,
    Document,
    IndexBuilder,
    build_shards,
    gather_collection_stats,
)
from repro.text import WhitespaceAnalyzer


def make_builder(shard_id=0):
    return IndexBuilder(shard_id, analyzer=WhitespaceAnalyzer())


class TestIndexBuilder:
    def test_basic_build(self):
        builder = make_builder()
        builder.add(Document(doc_id=0, text="apple banana apple"))
        builder.add(Document(doc_id=1, text="banana cherry"))
        shard = builder.build()
        assert shard.n_docs == 2
        assert shard.doc_freq("apple") == 1
        assert shard.doc_freq("banana") == 2
        postings = shard.postings("apple")
        assert postings.doc_ids.tolist() == [0]
        assert postings.tfs.tolist() == [2]

    def test_duplicate_doc_rejected(self):
        builder = make_builder()
        builder.add(Document(doc_id=0, text="x"))
        with pytest.raises(ValueError):
            builder.add(Document(doc_id=0, text="y"))

    def test_out_of_order_add_is_fine(self):
        builder = make_builder()
        builder.add(Document(doc_id=9, text="a b"))
        builder.add(Document(doc_id=1, text="a"))
        shard = builder.build()
        assert shard.postings("a").doc_ids.tolist() == [1, 9]

    def test_doc_lengths_and_avg(self):
        builder = make_builder()
        builder.add(Document(doc_id=0, text="a b c"))
        builder.add(Document(doc_id=1, text="a"))
        shard = builder.build()
        assert shard.doc_lengths == {0: 3, 1: 1}
        assert shard.avg_doc_length == 2.0
        assert shard.total_tokens == 4

    def test_title_is_indexed(self):
        builder = make_builder()
        builder.add(Document(doc_id=0, text="body", title="headline"))
        shard = builder.build()
        assert shard.has_term("headline")

    def test_scores_attached_and_positive(self):
        builder = make_builder()
        builder.add(Document(doc_id=0, text="a a b"))
        builder.add(Document(doc_id=1, text="b c"))
        shard = builder.build()
        for term in shard.terms():
            scores = shard.scores(term)
            assert scores.shape == (shard.doc_freq(term),)
            assert (scores > 0).all()

    def test_upper_bound_dominates_scores(self):
        builder = make_builder()
        for i in range(20):
            builder.add(Document(doc_id=i, text="x " * (i + 1) + "y"))
        shard = builder.build()
        for term in shard.terms():
            assert shard.scores(term).max() <= shard.upper_bound(term) + 1e-12

    def test_empty_build(self):
        shard = make_builder().build()
        assert shard.n_docs == 0
        assert shard.vocabulary_size() == 0


class TestCollectionStats:
    def test_local_stats(self):
        builder = make_builder()
        builder.add(Document(doc_id=0, text="a a b"))
        builder.add(Document(doc_id=1, text="b"))
        stats = builder.local_stats()
        assert stats.n_docs == 2
        assert stats.total_tokens == 4
        assert stats.doc_freq == {"a": 1, "b": 2}

    def test_gather_merges(self):
        b0, b1 = make_builder(0), make_builder(1)
        b0.add(Document(doc_id=0, text="a b"))
        b1.add(Document(doc_id=1, text="b c"))
        merged = gather_collection_stats([b0, b1])
        assert merged.n_docs == 2
        assert merged.doc_freq == {"a": 1, "b": 2, "c": 1}
        assert merged.avg_doc_length == 2.0

    def test_empty_stats_avg(self):
        assert CollectionStats().avg_doc_length == 0.0


class TestGlobalStatsScoring:
    def _two_shards(self, global_stats):
        docs0 = [Document(doc_id=0, text="rare common"),
                 Document(doc_id=1, text="common common filler")]
        docs1 = [Document(doc_id=2, text="common filler"),
                 Document(doc_id=3, text="common other")]
        return build_shards(
            [docs0, docs1], analyzer=WhitespaceAnalyzer(), global_stats=global_stats
        )

    def test_global_idf_shared_across_shards(self):
        s0, s1 = self._two_shards(global_stats=True)
        assert s0.idf("common") == pytest.approx(s1.idf("common"))
        assert s0.term("common").global_doc_freq == 4
        assert s0.n_docs_global == 4

    def test_local_idf_differs(self):
        s0, s1 = self._two_shards(global_stats=False)
        assert s0.term("common").global_doc_freq == 2
        assert s0.n_docs_global == s0.n_docs

    def test_global_idf_makes_rare_terms_score_higher(self):
        s0, _ = self._two_shards(global_stats=True)
        rare = float(np.max(s0.scores("rare")))
        common = float(np.max(s0.scores("common")))
        assert rare > common
