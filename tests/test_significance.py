"""Tests for the paired-bootstrap significance tooling."""

import numpy as np
import pytest

from repro.metrics import compare_latencies, paired_bootstrap


class TestPairedBootstrap:
    def test_clear_improvement_is_significant(self):
        rng = np.random.default_rng(0)
        baseline = rng.exponential(10.0, size=400)
        treatment = baseline * 0.5  # exactly halves every query
        result = paired_bootstrap(baseline, treatment)
        assert result.significant
        assert result.ci_low > 0
        assert result.mean_difference == pytest.approx(np.mean(baseline) * 0.5)

    def test_no_effect_is_not_significant(self):
        rng = np.random.default_rng(1)
        baseline = rng.exponential(10.0, size=400)
        treatment = baseline + rng.normal(0, 0.5, size=400)
        result = paired_bootstrap(baseline, treatment)
        assert not result.significant

    def test_regression_detected_with_sign(self):
        rng = np.random.default_rng(2)
        baseline = rng.exponential(10.0, size=400)
        result = paired_bootstrap(baseline, baseline * 1.5)
        assert result.significant
        assert result.ci_high < 0  # treatment is worse

    def test_interval_contains_mean(self):
        rng = np.random.default_rng(3)
        baseline = rng.exponential(5.0, size=200)
        treatment = rng.exponential(4.0, size=200)
        result = paired_bootstrap(baseline, treatment)
        assert result.ci_low <= result.mean_difference <= result.ci_high

    def test_deterministic_by_seed(self):
        baseline = np.arange(1.0, 51.0)
        treatment = baseline * 0.9
        a = paired_bootstrap(baseline, treatment, seed=7)
        b = paired_bootstrap(baseline, treatment, seed=7)
        assert (a.ci_low, a.ci_high) == (b.ci_low, b.ci_high)

    def test_validation(self):
        with pytest.raises(ValueError):
            paired_bootstrap([1.0], [1.0])
        with pytest.raises(ValueError):
            paired_bootstrap([1.0, 2.0], [1.0])
        with pytest.raises(ValueError):
            paired_bootstrap([1.0, 2.0], [1.0, 2.0], confidence=1.5)
        with pytest.raises(ValueError):
            paired_bootstrap([1.0, 2.0], [1.0, 2.0], n_resamples=10)


class TestCompareLatencies:
    def test_cottage_significantly_faster(self, unit_testbed):
        trace = unit_testbed.wikipedia_trace
        exhaustive = unit_testbed.run(trace, "exhaustive")
        cottage = unit_testbed.run(trace, "cottage")
        result = compare_latencies(exhaustive, cottage)
        assert result.significant
        assert result.ci_low > 0
        assert result.n_samples == len(trace)

    def test_mismatched_traces_rejected(self, unit_testbed):
        wiki = unit_testbed.run(unit_testbed.wikipedia_trace, "exhaustive")
        lucene = unit_testbed.run(unit_testbed.lucene_trace, "exhaustive")
        with pytest.raises(ValueError):
            compare_latencies(wiki, lucene)
