"""Adaptive traversal selection: determinism, bit-identity, downshift.

The selector's contract has three load-bearing halves:

* **Determinism** — ``choose`` is a pure function of
  ``(query.terms, shard_id, budget_ms)``: the memo caches, the replica
  plane and trace replays all assume the same inputs yield the same
  pick, and retraining with the same seed must reproduce the same model.
* **Bit-identity** — dispatching a chosen strategy through the searcher
  hook must produce *exactly* the result (fingerprint: hits, scores,
  tie order, cost counters) of running that strategy standalone, and an
  absent / always-``None`` selector must be byte-for-byte the static
  path through the full simulated cluster.
* **Budget downshift** — only an explicit sub-budget dispatch may leave
  the rank-safe strategy space, and the unbudgeted (prewarm) view must
  never see the downshifted choice.

Runs under the ``dev``/``ci`` Hypothesis profiles from ``conftest.py``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cluster import SearchCluster
from repro.experiments.bench_retrieval import build_corpus, sample_queries
from repro.experiments.oracle_sweep import sweep
from repro.index.term_stats import TermStatsIndex
from repro.policies import ExhaustivePolicy
from repro.predictors import (
    SAFE_STRATEGIES,
    LearnedSelector,
    TermFeatureCache,
)
from repro.retrieval import (
    STRATEGIES,
    FixedSelector,
    Query,
    QueryTrace,
    ShardSearcher,
    StrategyChoice,
)

N_SHARDS = 3
DOCS_PER_SHARD = 100
VOCAB_SIZE = 60
N_QUERIES = 40
K = 5
SEED = 11

VOCAB = [f"t{i:03d}" for i in range(VOCAB_SIZE)]

# Hypothesis queries over the corpus vocabulary (plus OOV terms): unique
# because ``Query`` rejects duplicates — dedup is the trace layer's job.
term_tuples = st.lists(
    st.sampled_from(VOCAB + ["zzz_oov"]), unique=True, min_size=1, max_size=4
).map(tuple)


@pytest.fixture(scope="module")
def corpus():
    return build_corpus(N_SHARDS, DOCS_PER_SHARD, VOCAB_SIZE, SEED)


@pytest.fixture(scope="module")
def dataset(corpus):
    return sweep(corpus, sample_queries(N_QUERIES, VOCAB_SIZE, SEED), k=K)


@pytest.fixture(scope="module")
def cache(corpus):
    return TermFeatureCache([TermStatsIndex(s, k=K) for s in corpus])


@pytest.fixture(scope="module")
def selector(dataset, cache):
    sel = LearnedSelector(cache, hidden_units=16, seed=SEED)
    sel.fit(dataset.term_tuples, dataset.labels(), iterations=150, seed=SEED)
    return sel


def make_trace(dataset, spacing_s: float = 0.5) -> QueryTrace:
    return QueryTrace(
        name="selection",
        queries=[
            Query(query_id=i, terms=terms, arrival_time=i * spacing_s)
            for i, terms in enumerate(dataset.term_tuples)
        ],
    )


class TestDeterminism:
    def test_retrain_same_seed_reproduces_choices(self, dataset, cache, selector):
        twin = LearnedSelector(cache, hidden_units=16, seed=SEED)
        twin.fit(dataset.term_tuples, dataset.labels(), iterations=150, seed=SEED)
        want = selector.predict_strategies(dataset.term_tuples)
        assert np.array_equal(twin.predict_strategies(dataset.term_tuples), want)

    def test_repeated_batch_predictions_stable(self, dataset, selector):
        first = selector.predict_strategies(dataset.term_tuples)
        assert np.array_equal(selector.predict_strategies(dataset.term_tuples), first)

    def test_lazy_choose_matches_batched_prediction(self, dataset, selector):
        picked = selector.predict_strategies(dataset.term_tuples)
        for q_idx, terms in enumerate(dataset.term_tuples[:8]):
            query = Query(query_id=q_idx, terms=terms)
            for sid in range(N_SHARDS):
                choice = selector.choose(query, sid, None)
                assert choice.strategy == SAFE_STRATEGIES[picked[q_idx, sid]]

    def test_prewarm_agrees_with_lazy_path(self, dataset, cache, selector):
        warmed = LearnedSelector(cache, hidden_units=16, seed=SEED)
        warmed.fit(dataset.term_tuples, dataset.labels(), iterations=150, seed=SEED)
        queries = make_trace(dataset).queries
        assert warmed.prewarm(queries) == len(set(dataset.term_tuples))
        assert warmed.prewarm(queries) == 0  # memoized — nothing new
        for query in queries[:8]:
            for sid in range(N_SHARDS):
                want = selector.choose(query, sid, None)
                assert warmed.choose(query, sid, None) == want

    @given(terms=term_tuples)
    def test_choose_is_pure_per_terms(self, selector, terms):
        query = Query(query_id=0, terms=terms)
        for sid in range(N_SHARDS):
            first = selector.choose(query, sid, None)
            assert first.strategy in SAFE_STRATEGIES
            assert selector.choose(query, sid, None) == first


class TestDispatchBitIdentity:
    @given(terms=term_tuples)
    def test_dispatch_matches_standalone_strategy(self, corpus, selector, terms):
        """The gated property: a selected traversal dispatched through the
        searcher hook is fingerprint-identical (hits, scores, tie order,
        cost counters) to running that strategy directly."""
        query = Query(query_id=0, terms=terms)
        for sid, shard in enumerate(corpus):
            choice = selector.choose(query, sid, None)
            dispatched = ShardSearcher(shard, k=K).search(query, choice)
            standalone = STRATEGIES[choice.strategy](shard, list(terms), K)
            assert dispatched.fingerprint() == standalone.fingerprint()

    def test_none_selector_is_bit_identical(self, corpus, dataset):
        """``selector=None`` and a selector that always declines must both
        be byte-for-byte the static cluster path."""

        class Declines:
            name = "declines"

            def choose(self, query, shard_id, budget_ms):
                return None

        trace = make_trace(dataset)
        runs = [
            SearchCluster(corpus, k=K).run_trace(trace, ExhaustivePolicy(), selector=sel)
            for sel in (None, Declines())
        ]
        baseline, declined = runs
        assert baseline.strategy_choices == {}
        # A declining selector still dispatches — the accounting records
        # the effective (static default) strategy per shard request.
        assert declined.strategy_choices == {
            "maxscore": len(trace.queries) * N_SHARDS
        }
        assert [r.latency_ms for r in declined.records] == [
            r.latency_ms for r in baseline.records
        ]
        for got, want in zip(declined.records, baseline.records):
            assert got.result.fingerprint() == want.result.fingerprint()

    def test_fixed_selector_overrides_cluster_default(self, corpus, dataset):
        """Forcing one strategy through dispatch == configuring it
        statically, and every dispatched job is accounted for."""
        trace = make_trace(dataset)
        static = SearchCluster(corpus, k=K, strategy="wand").run_trace(
            trace, ExhaustivePolicy()
        )
        forced = SearchCluster(corpus, k=K, strategy="maxscore").run_trace(
            trace, ExhaustivePolicy(),
            selector=FixedSelector(StrategyChoice(strategy="wand")),
        )
        assert forced.strategy_choices == {"wand": len(trace.queries) * N_SHARDS}
        for got, want in zip(forced.records, static.records):
            assert got.result.fingerprint() == want.result.fingerprint()

    def test_learned_selector_accounting(self, corpus, dataset, selector):
        result = SearchCluster(corpus, k=K).run_trace(
            make_trace(dataset), ExhaustivePolicy(), selector=selector
        )
        assert set(result.strategy_choices) <= set(SAFE_STRATEGIES)
        total = sum(result.strategy_choices.values())
        assert total == len(dataset.term_tuples) * N_SHARDS


class TestBudgetDownshift:
    @pytest.fixture(scope="class")
    def downshifter(self, selector, cache, tmp_path_factory):
        path = tmp_path_factory.mktemp("selector") / "selector.npz"
        selector.save(path)
        return LearnedSelector.load(path, cache, downshift_budget_ms=5.0)

    def test_tight_budget_downshifts_to_conjunctive(self, dataset, downshifter):
        query = Query(query_id=0, terms=dataset.term_tuples[0])
        before = downshifter.downshifts
        choice = downshifter.choose(query, 0, 1.0)
        assert choice.strategy == "conjunctive"
        assert downshifter.downshifts == before + 1

    def test_unbudgeted_and_ample_budgets_stay_rank_safe(
        self, dataset, selector, downshifter
    ):
        """Prewarm (no budget) and any budget at/above the threshold must
        see the identical rank-safe pick the plain selector makes."""
        for q_idx, terms in enumerate(dataset.term_tuples[:8]):
            query = Query(query_id=q_idx, terms=terms)
            for sid in range(N_SHARDS):
                want = selector.choose(query, sid, None)
                assert downshifter.choose(query, sid, None) == want
                assert downshifter.choose(query, sid, 5.0) == want
                assert downshifter.choose(query, sid, 250.0) == want


class TestPersistence:
    def test_roundtrip_reproduces_predictions(
        self, dataset, cache, selector, tmp_path
    ):
        path = tmp_path / "selector.npz"
        selector.save(path)
        loaded = LearnedSelector.load(path, cache)
        assert loaded.confidence == selector.confidence
        assert loaded.fallback_strategy == selector.fallback_strategy
        assert np.array_equal(
            loaded.predict_strategies(dataset.term_tuples),
            selector.predict_strategies(dataset.term_tuples),
        )

    def test_shard_count_mismatch_rejected(self, corpus, selector, tmp_path):
        path = tmp_path / "selector.npz"
        selector.save(path)
        smaller = TermFeatureCache([TermStatsIndex(corpus[0], k=K)])
        with pytest.raises(ValueError, match="shards"):
            LearnedSelector.load(path, smaller)

    def test_untrained_selector_cannot_save_or_predict(self, cache, tmp_path):
        fresh = LearnedSelector(cache, hidden_units=16, seed=SEED)
        with pytest.raises(RuntimeError, match="untrained"):
            fresh.save(tmp_path / "nope.npz")
        with pytest.raises(RuntimeError, match="not been trained"):
            fresh.predict_strategies([("t000",)])

    def test_unsafe_fallback_rejected(self, cache):
        with pytest.raises(ValueError, match="rank-safe"):
            LearnedSelector(cache, fallback_strategy="conjunctive")

    def test_unknown_strategy_choice_rejected(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            StrategyChoice(strategy="teleport")
