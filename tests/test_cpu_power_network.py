"""Unit tests for the CPU/DVFS, power and network models."""

import pytest

from repro.cluster import (
    CostModel,
    EnergyMeter,
    FrequencyScale,
    NetworkModel,
    PowerModel,
    equivalent_latency_ms,
    package_report,
    scaled_service_ms,
)
from repro.retrieval.result import CostStats


class TestFrequencyScale:
    def test_defaults_match_paper_range(self):
        scale = FrequencyScale()
        assert scale.min_ghz == 1.2
        assert scale.max_ghz == 2.7
        assert scale.default_ghz == 2.1

    def test_clamp_rounds_up(self):
        scale = FrequencyScale()
        assert scale.clamp(1.3) == 1.5
        assert scale.clamp(2.1) == 2.1
        assert scale.clamp(99.0) == 2.7

    def test_boost_ratio(self):
        assert FrequencyScale().boost_ratio == pytest.approx(2.7 / 2.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            FrequencyScale(levels_ghz=())
        with pytest.raises(ValueError):
            FrequencyScale(levels_ghz=(2.0, 1.0), default_ghz=2.0)
        with pytest.raises(ValueError):
            FrequencyScale(levels_ghz=(1.0, 2.0), default_ghz=1.5)


class TestCostModel:
    def test_service_scales_inverse_with_frequency(self):
        model = CostModel()
        cost = CostStats(docs_evaluated=100, postings_scored=150)
        slow = model.service_ms(cost, 1.2)
        fast = model.service_ms(cost, 2.4)
        assert slow == pytest.approx(2 * fast)

    def test_more_work_longer_service(self):
        model = CostModel()
        small = CostStats(docs_evaluated=10, postings_scored=10)
        large = CostStats(docs_evaluated=1000, postings_scored=1500)
        assert model.service_ms(large, 2.1) > model.service_ms(small, 2.1)

    def test_fixed_floor(self):
        model = CostModel()
        assert model.service_ms(CostStats(), 2.1) == pytest.approx(
            model.fixed_cycles / 2.1e6
        )

    def test_zero_frequency_rejected(self):
        with pytest.raises(ValueError):
            CostModel().service_ms(CostStats(), 0.0)


class TestEquations:
    def test_eq1_scaled_service(self):
        # S_i = S_pred * f_default / f  (paper Eq. 1)
        assert scaled_service_ms(10.0, 2.1, 2.7) == pytest.approx(10.0 * 2.1 / 2.7)
        assert scaled_service_ms(10.0, 2.1, 2.1) == 10.0

    def test_eq2_equivalent_latency(self):
        # Queued work runs at its own (default) frequency; only the new
        # request's service scales (per-job DVFS — see the docstring for
        # why this adapts the paper's Eq. 2).
        value = equivalent_latency_ms(30.0, 10.0, 2.1, 2.1)
        assert value == pytest.approx(40.0)
        boosted = equivalent_latency_ms(30.0, 10.0, 2.1, 2.7)
        assert boosted == pytest.approx(30.0 + 10.0 * 2.1 / 2.7)

    def test_eq2_boost_never_slows_queue_term(self):
        # Boosting helps, but only on the request's own share.
        base = equivalent_latency_ms(50.0, 10.0, 2.1, 2.1)
        boosted = equivalent_latency_ms(50.0, 10.0, 2.1, 2.7)
        assert 50.0 < boosted < base

    def test_eq1_validation(self):
        with pytest.raises(ValueError):
            scaled_service_ms(1.0, 2.1, 0.0)


class TestPowerModel:
    def test_idle_anchor(self):
        # Default calibration reproduces the paper's 14.53 W idle package.
        model = PowerModel()
        assert model.idle_package_w(16) == pytest.approx(14.53, abs=0.2)

    def test_busy_power_cubic(self):
        model = PowerModel()
        low = model.core_power_w(1.2, busy=True)
        high = model.core_power_w(2.4, busy=True)
        dynamic_low = low - model.core_static_w
        dynamic_high = high - model.core_static_w
        assert dynamic_high == pytest.approx(8 * dynamic_low)

    def test_idle_core_has_no_dynamic(self):
        model = PowerModel()
        assert model.core_power_w(2.7, busy=False) == model.core_static_w

    def test_validation(self):
        with pytest.raises(ValueError):
            PowerModel().core_power_w(0.0, busy=True)


class TestEnergyMeter:
    def test_busy_energy_accumulates(self):
        model = PowerModel()
        meter = EnergyMeter(model)
        meter.add_busy(100.0, 2.1)
        assert meter.busy_ms == 100.0
        assert meter.busy_energy_mj == pytest.approx(
            100.0 * model.core_power_w(2.1, busy=True)
        )

    def test_total_energy_includes_idle(self):
        model = PowerModel()
        meter = EnergyMeter(model)
        meter.add_busy(100.0, 2.1)
        total = meter.total_energy_mj(1000.0)
        assert total > meter.busy_energy_mj
        assert total == pytest.approx(
            meter.busy_energy_mj + 900.0 * model.core_static_w
        )

    def test_utilization(self):
        meter = EnergyMeter(PowerModel())
        meter.add_busy(250.0, 2.1)
        assert meter.utilization(1000.0) == 0.25

    def test_boost_residency_tracked(self):
        meter = EnergyMeter(PowerModel())
        meter.add_busy(10.0, 2.7, boosted=True)
        meter.add_busy(20.0, 2.1)
        assert meter.boosted_ms == 10.0
        assert meter.frequency_residency() == {2.7: 10.0, 2.1: 20.0}

    def test_elapsed_shorter_than_busy_rejected(self):
        meter = EnergyMeter(PowerModel())
        meter.add_busy(100.0, 2.1)
        with pytest.raises(ValueError):
            meter.total_energy_mj(50.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            EnergyMeter(PowerModel()).add_busy(-1.0, 2.1)


class TestPackageReport:
    def test_average_power_bounds(self):
        model = PowerModel()
        meters = [EnergyMeter(model) for _ in range(4)]
        meters[0].add_busy(500.0, 2.1)
        report = package_report(meters, model, elapsed_ms=1000.0)
        assert report.average_power_w > report.idle_package_w - 1e-9
        assert report.dynamic_power_w > 0
        assert report.per_core_utilization == (0.5, 0.0, 0.0, 0.0)

    def test_all_idle_equals_floor(self):
        model = PowerModel()
        meters = [EnergyMeter(model) for _ in range(4)]
        report = package_report(meters, model, elapsed_ms=1000.0)
        assert report.average_power_w == pytest.approx(report.idle_package_w)


class TestNetworkModel:
    def test_delay_and_rtt(self):
        net = NetworkModel(base_delay_ms=0.05, bandwidth_gbps=10.0)
        delay = net.delay_ms(payload_bytes=1250)
        assert delay == pytest.approx(0.05 + 0.001)
        assert net.rtt_ms(1250) == pytest.approx(2 * delay)

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkModel(base_delay_ms=-0.1)
        with pytest.raises(ValueError):
            NetworkModel(bandwidth_gbps=0)
        with pytest.raises(ValueError):
            NetworkModel().delay_ms(-1)
