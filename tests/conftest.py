"""Shared fixtures and Hypothesis profiles.

Expensive artifacts (corpus, shards, trained testbed) are session-scoped:
they are deterministic, immutable, and shared read-only by many tests.

Two Hypothesis profiles are registered: ``dev`` (the default — few
examples, fast inner loop) and ``ci`` (at least 100 examples per
property, what the CI workflow runs).  Select with
``HYPOTHESIS_PROFILE=ci pytest ...``.
"""

from __future__ import annotations

import os
import random

import pytest
from hypothesis import settings

from repro.experiments import Scale, Testbed

settings.register_profile("ci", max_examples=100, deadline=None)
settings.register_profile("dev", max_examples=15, deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))
from repro.index import Document, build_shards, partition_topical
from repro.text import WhitespaceAnalyzer
from repro.workloads import CorpusConfig, SyntheticCorpus, training_queries


def make_documents(n_docs: int = 120, vocab: int = 80, seed: int = 0) -> list[Document]:
    """Small hand-rolled collection with topical skew (no numpy needed)."""
    rng = random.Random(seed)
    docs = []
    for doc_id in range(n_docs):
        topic = doc_id % 4
        words = []
        for _ in range(rng.randint(15, 40)):
            if rng.random() < 0.6:
                words.append(f"t{topic * 10 + rng.randint(0, 9)}")
            else:
                words.append(f"t{rng.randint(40, vocab - 1)}")
        docs.append(Document(doc_id=doc_id, text=" ".join(words), topic=topic))
    return docs


@pytest.fixture(scope="session")
def documents() -> list[Document]:
    return make_documents()


@pytest.fixture(scope="session")
def shards(documents):
    return build_shards(
        partition_topical(documents, 4), analyzer=WhitespaceAnalyzer()
    )


@pytest.fixture(scope="session")
def tiny_corpus() -> SyntheticCorpus:
    return SyntheticCorpus(
        CorpusConfig(
            n_docs=400, vocab_size=1500, n_topics=8, topic_core_size=90,
            mean_doc_length=50,
        )
    )


@pytest.fixture(scope="session")
def unit_testbed() -> Testbed:
    """A fully trained testbed at unit scale — the integration workhorse."""
    return Testbed.build(Scale.unit())


@pytest.fixture(scope="session")
def unit_train_queries(unit_testbed):
    return training_queries(unit_testbed.corpus, 40, seed=4242)
