"""Telemetry wired through the cluster: invariance, spans, run stats.

The load-bearing guarantee: attaching a :class:`Telemetry` session to
``run_trace`` observes the simulation without perturbing it — latencies,
power and merged results are bit-identical with telemetry on or off.
"""

import pytest

from repro.cluster import ResultCache
from repro.telemetry import Telemetry


@pytest.fixture(scope="module")
def paired_runs(unit_testbed):
    """The same cottage run, once with telemetry and once without."""
    trace = unit_testbed.wikipedia_trace
    telemetry = Telemetry()
    with_tel = unit_testbed.cluster.run_trace(
        trace, unit_testbed.make_policy("cottage"), telemetry=telemetry
    )
    without = unit_testbed.cluster.run_trace(
        trace, unit_testbed.make_policy("cottage")
    )
    return telemetry, with_tel, without


class TestBitIdentity:
    def test_latencies_identical(self, paired_runs):
        _, with_tel, without = paired_runs
        assert with_tel.latencies_ms() == without.latencies_ms()

    def test_power_identical(self, paired_runs):
        _, with_tel, without = paired_runs
        assert with_tel.power == without.power

    def test_results_identical(self, paired_runs):
        _, with_tel, without = paired_runs
        assert len(with_tel.records) == len(without.records)
        for a, b in zip(with_tel.records, without.records):
            assert a.result.hits == b.result.hits
            assert a.decision.shard_ids == b.decision.shard_ids

    def test_events_processed_identical(self, paired_runs):
        _, with_tel, without = paired_runs
        assert with_tel.events_processed == without.events_processed


class TestQueryLifecycleSpans:
    """The acceptance path: predict -> budget-assign -> service -> merge."""

    def test_cottage_pipeline_spans_present(self, paired_runs):
        telemetry, with_tel, _ = paired_runs
        by_name: dict[str, int] = {}
        for span in telemetry.tracer.spans:
            by_name[span.name] = by_name.get(span.name, 0) + 1
        n = len(with_tel.records)
        assert by_name["query"] == n
        assert by_name["aggregator.decide"] == n
        assert by_name["policy.predict"] == n
        assert by_name["policy.budget_assign"] == n
        assert by_name["aggregator.merge"] == n
        assert by_name["isn.service"] > 0

    def test_policy_spans_nest_inside_decide(self, paired_runs):
        telemetry, _, _ = paired_runs
        for span in telemetry.tracer.spans:
            if span.name in ("policy.predict", "policy.budget_assign"):
                assert span.path[0] == "aggregator.decide"
                assert span.track == "aggregator"

    def test_isn_service_spans_sequential_per_track(self, paired_runs):
        telemetry, _, _ = paired_runs
        services = [s for s in telemetry.tracer.spans if s.name == "isn.service"]
        by_track: dict[str, list] = {}
        for span in services:
            by_track.setdefault(span.track, []).append(span)
        assert by_track  # at least one ISN did work
        for spans in by_track.values():
            spans.sort(key=lambda s: s.sim_begin_ms)
            for prev, nxt in zip(spans, spans[1:]):
                # Single core: intervals never overlap.
                assert nxt.sim_begin_ms >= prev.sim_end_ms - 1e-9

    def test_no_spans_left_open(self, paired_runs):
        telemetry, _, _ = paired_runs
        assert telemetry.tracer.open_spans() == []

    def test_dual_clocks_recorded(self, paired_runs):
        telemetry, _, _ = paired_runs
        services = [s for s in telemetry.tracer.spans if s.name == "isn.service"]
        assert any(s.sim_ms > 0 for s in services)
        replay = [s for s in telemetry.tracer.spans if s.name == "cluster.replay"]
        assert len(replay) == 1
        assert replay[0].wall_ms > 0.0
        assert replay[0].sim_ms > 0.0


class TestRunStats:
    """Satellite: events/cache accounting on RunResult and PolicySummary."""

    def test_run_result_accounting(self, paired_runs):
        _, with_tel, without = paired_runs
        for run in (with_tel, without):
            assert run.events_processed > len(run.records)
            assert run.clamped_schedules == 0
            assert run.searcher_hits >= 0
            assert run.searcher_computations >= 0
            # The replay touched every query at least once somewhere.
            assert run.searcher_hits + run.searcher_computations > 0

    def test_second_run_hits_searcher_memo(self, paired_runs):
        # The first run warmed the memo; the second is pure hits.
        _, _, without = paired_runs
        assert without.searcher_hits > 0
        assert without.searcher_computations == 0

    def test_policy_summary_carries_stats(self, unit_testbed, paired_runs):
        from repro.metrics.summary import summarize_run

        _, with_tel, _ = paired_runs
        truth = unit_testbed.truth_for(unit_testbed.wikipedia_trace)
        summary = summarize_run(with_tel, truth, trace_name="wikipedia")
        assert summary.events_processed == with_tel.events_processed
        assert summary.searcher_hits == with_tel.searcher_hits
        assert summary.searcher_computations == with_tel.searcher_computations
        assert summary.result_cache_hit_rate is None  # ran without a cache
        assert summary.row()["events"] == with_tel.events_processed

    def test_result_cache_hit_rate_populated(self, unit_testbed):
        from repro.metrics.summary import summarize_run

        trace = unit_testbed.wikipedia_trace
        run = unit_testbed.cluster.run_trace(
            trace,
            unit_testbed.make_policy("cottage"),
            cache=ResultCache(capacity=256),
        )
        truth = unit_testbed.truth_for(trace)
        summary = summarize_run(run, truth, trace_name="wikipedia")
        assert summary.result_cache_hit_rate is not None
        assert 0.0 < summary.result_cache_hit_rate < 1.0


class TestMetricsFlow:
    def test_core_instruments_populated(self, paired_runs):
        telemetry, with_tel, _ = paired_runs
        snapshot = telemetry.metrics.snapshot()
        n = len(with_tel.records)
        assert snapshot["aggregator.latency_ms"]["count"] == n
        assert snapshot["run.queries"]["value"] == n
        assert snapshot["run.events_processed"]["value"] == with_tel.events_processed
        assert snapshot["sim.schedule_at.clamped"]["value"] == 0
        kept = snapshot["cottage.kept"]["value"]
        cut = (
            snapshot["cottage.cut_zero_quality"]["value"]
            + snapshot["cottage.cut_too_slow"]["value"]
        )
        # Every (query, shard) pair is either kept or cut.
        assert kept + cut == n * unit_shards(telemetry)
        assert any(
            name.startswith("isn.freq_residency_ms.") for name in snapshot
        )

    def test_rebinding_restores_disabled_session(self, unit_testbed, paired_runs):
        # After a telemetry run, a fresh policy records nothing anywhere.
        policy = unit_testbed.make_policy("cottage")
        from repro.telemetry import NO_TELEMETRY

        assert policy.telemetry is NO_TELEMETRY


def unit_shards(telemetry) -> int:
    """Shard count recovered from the recorded ISN tracks."""
    return sum(1 for t in telemetry.tracer.tracks if t.startswith("isn."))
