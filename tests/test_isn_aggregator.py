"""Unit tests for the simulated ISN server and the aggregator."""

import pytest

from repro.cluster import (
    Aggregator,
    CostModel,
    Decision,
    EnergyMeter,
    FrequencyScale,
    ISNServer,
    NetworkModel,
    PowerModel,
    Simulator,
)
from repro.retrieval import Query, ShardSearcher


@pytest.fixture()
def isn(shards):
    return ISNServer(
        shard_id=0,
        searcher=ShardSearcher(shards[0], k=5),
        cost_model=CostModel(),
        freq_scale=FrequencyScale(),
        meter=EnergyMeter(PowerModel()),
    )


def submit(isn, sim, query, freq=2.1, deadline=None, done=None):
    outcomes = []
    job = isn.make_job(
        query,
        freq_ghz=freq,
        deadline_ms=deadline,
        on_done=done or (lambda job, ok, busy: outcomes.append((ok, busy))),
    )
    isn.submit(job, sim)
    return job, outcomes


class TestISNServer:
    def test_processes_job(self, isn):
        sim = Simulator()
        query = Query(query_id=0, terms=("t1",))
        job, outcomes = submit(isn, sim, query)
        sim.run()
        assert outcomes == [(True, pytest.approx(sim.now))]
        assert isn.jobs_processed == 1
        assert isn.queued_work_default_ms == 0.0

    def test_fifo_order(self, isn):
        sim = Simulator()
        finished = []
        for qid, term in [(0, "t1"), (1, "t2")]:
            submit(
                isn, sim, Query(query_id=qid, terms=(term,)),
                done=lambda job, ok, busy: finished.append(job.query.query_id),
            )
        sim.run()
        assert finished == [0, 1]

    def test_deadline_abort_mid_service(self, isn):
        sim = Simulator()
        query = Query(query_id=0, terms=("t1",))
        probe = isn.make_job(query, 2.1, None, lambda *a: None)
        service = isn.cost_model.service_ms(probe.result.cost, 2.1)
        job, outcomes = submit(isn, sim, query, deadline=service / 2)
        sim.run()
        assert outcomes == [(False, pytest.approx(service / 2))]
        assert isn.jobs_aborted >= 1

    def test_expired_in_queue_discarded_without_work(self, isn):
        sim = Simulator()
        q0 = Query(query_id=0, terms=("t1",))
        probe = isn.make_job(q0, 2.1, None, lambda *a: None)
        service = isn.cost_model.service_ms(probe.result.cost, 2.1)
        # First job occupies the server past the second job's deadline.
        submit(isn, sim, q0)
        job, outcomes = submit(
            isn, sim, Query(query_id=1, terms=("t2",)), deadline=service / 10
        )
        sim.run()
        assert outcomes == [(False, 0.0)]
        assert job.aborted_in_queue

    def test_boost_runs_faster(self, isn):
        query = Query(query_id=0, terms=("t1",))
        sim_default = Simulator()
        submit(isn, sim_default, query, freq=2.1)
        sim_default.run()
        default_ms = sim_default.now

        sim_boost = Simulator()
        submit(isn, sim_boost, query, freq=2.7)
        sim_boost.run()
        assert sim_boost.now == pytest.approx(default_ms * 2.1 / 2.7)

    def test_frequency_clamped_to_ladder(self, isn):
        job = isn.make_job(Query(query_id=0, terms=("t1",)), 2.0, None, lambda *a: None)
        assert job.freq_ghz == 2.1

    def test_queued_work_includes_running_job(self, isn):
        sim = Simulator()
        submit(isn, sim, Query(query_id=0, terms=("t1",)))
        submit(isn, sim, Query(query_id=1, terms=("t2",)))
        assert isn.queued_work_default_ms > 0
        assert isn.queue_length == 1  # one waiting, one in service


def make_cluster(shards, policy, k=5):
    sim = Simulator()
    isns = [
        ISNServer(
            shard_id=i,
            searcher=ShardSearcher(shard, k=k),
            cost_model=CostModel(),
            freq_scale=FrequencyScale(),
            meter=EnergyMeter(PowerModel()),
        )
        for i, shard in enumerate(shards)
    ]
    aggregator = Aggregator(
        isns=isns, policy=policy, network=NetworkModel(), sim=sim, k=k
    )
    return sim, aggregator


class StaticPolicy:
    """Fixed decision for every query; records observations."""

    name = "static"

    def __init__(self, decision):
        self.decision = decision
        self.observed = []

    def decide(self, query, view):
        return self.decision

    def observe(self, record):
        self.observed.append(record)


class TestAggregator:
    def test_waits_for_all_without_budget(self, shards):
        policy = StaticPolicy(Decision(shard_ids=(0, 1, 2, 3)))
        sim, aggregator = make_cluster(shards, policy)
        query = Query(query_id=0, terms=("t1", "t12"))
        sim.schedule(0.0, lambda: aggregator.on_query(query))
        sim.run()
        assert len(aggregator.records) == 1
        record = aggregator.records[0]
        assert record.n_counted == 4
        assert record.result.hits
        assert policy.observed == [record]

    def test_budget_drops_stragglers(self, shards):
        # A 0.2 ms budget is below any service time: every ISN aborts and
        # the answer is empty, but the latency respects the deadline.
        policy = StaticPolicy(Decision(shard_ids=(0, 1), time_budget_ms=0.2))
        sim, aggregator = make_cluster(shards, policy)
        sim.schedule(0.0, lambda: aggregator.on_query(Query(query_id=0, terms=("t1",))))
        sim.run()
        record = aggregator.records[0]
        assert record.n_counted == 0
        assert record.result.hits == []
        assert record.latency_ms <= 0.2 + 2 * NetworkModel().delay_ms() + 1e-6

    def test_empty_selection_answers_immediately(self, shards):
        policy = StaticPolicy(Decision(shard_ids=(), coordination_delay_ms=0.5))
        sim, aggregator = make_cluster(shards, policy)
        sim.schedule(0.0, lambda: aggregator.on_query(Query(query_id=0, terms=("t1",))))
        sim.run()
        record = aggregator.records[0]
        assert record.latency_ms == 0.5
        assert record.result.hits == []

    def test_subset_matches_offline_merge(self, shards):
        policy = StaticPolicy(Decision(shard_ids=(0, 2)))
        sim, aggregator = make_cluster(shards, policy)
        query = Query(query_id=0, terms=("t1", "t12"))
        sim.schedule(0.0, lambda: aggregator.on_query(query))
        sim.run()
        from repro.retrieval import DistributedSearcher

        offline = DistributedSearcher(shards, k=5).search(query, shard_ids=[0, 2])
        assert aggregator.records[0].result.hits == offline.hits

    def test_coordination_delay_adds_latency(self, shards):
        fast = StaticPolicy(Decision(shard_ids=(0,)))
        slow = StaticPolicy(Decision(shard_ids=(0,), coordination_delay_ms=5.0))
        latencies = []
        for policy in (fast, slow):
            sim, aggregator = make_cluster(shards, policy)
            sim.schedule(0.0, lambda a=aggregator: a.on_query(Query(query_id=0, terms=("t1",))))
            sim.run()
            latencies.append(aggregator.records[0].latency_ms)
        assert latencies[1] == pytest.approx(latencies[0] + 5.0)

    def test_docs_searched_counts_partial_work(self, shards):
        # Abort mid-service: C_RES charges the fraction actually scanned.
        policy = StaticPolicy(Decision(shard_ids=(0,), time_budget_ms=0.5))
        sim, aggregator = make_cluster(shards, policy)
        sim.schedule(0.0, lambda: aggregator.on_query(Query(query_id=0, terms=("t1",))))
        sim.run()
        record = aggregator.records[0]
        full = ShardSearcher(shards[0], k=5).search(Query(query_id=0, terms=("t1",)))
        assert 0 <= record.docs_searched <= full.cost.docs_evaluated
