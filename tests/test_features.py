"""Unit tests for Table I/II feature extraction."""

import numpy as np
import pytest

from repro.index.term_stats import TermStatsIndex
from repro.predictors import (
    LATENCY_FEATURE_NAMES,
    QUALITY_FEATURE_NAMES,
    feature_table,
    latency_features,
    quality_features,
)


@pytest.fixture(scope="module")
def stats(shards):
    return TermStatsIndex(shards[0], k=10)


@pytest.fixture(scope="module")
def two_terms(shards):
    terms = sorted(
        shards[0].terms(), key=lambda t: shards[0].doc_freq(t), reverse=True
    )
    return terms[0], terms[1]


class TestQualityFeatures:
    def test_dimension_matches_table1(self, stats, two_terms):
        vector = quality_features([two_terms[0]], stats)
        assert vector.shape == (len(QUALITY_FEATURE_NAMES),)
        assert len(QUALITY_FEATURE_NAMES) == 10  # Table I has 10 rows

    def test_single_term_matches_stats(self, stats, two_terms):
        term = two_terms[0]
        vector = quality_features([term], stats)
        term_stats = stats.get(term)
        named = dict(zip(QUALITY_FEATURE_NAMES, vector))
        assert named["max_score"] == pytest.approx(term_stats.max_score)
        assert named["posting_list_length"] == term_stats.posting_length
        assert named["arithmetic_average_score"] == pytest.approx(term_stats.mean)

    def test_max_aggregation(self, stats, two_terms):
        a, b = two_terms
        combined = quality_features([a, b], stats)
        va = quality_features([a], stats)
        vb = quality_features([b], stats)
        np.testing.assert_allclose(combined, np.maximum(va, vb))

    def test_empty_query_rejected(self, stats):
        with pytest.raises(ValueError):
            quality_features([], stats)

    def test_unknown_term_all_zero_but_idf(self, stats):
        vector = quality_features(["zzz-unknown"], stats)
        assert vector[:10].max() == 0.0


class TestLatencyFeatures:
    def test_dimension_matches_table2(self, stats, two_terms):
        vector = latency_features([two_terms[0]], stats)
        assert vector.shape == (len(LATENCY_FEATURE_NAMES),)
        assert len(LATENCY_FEATURE_NAMES) == 15  # Table II has 15 rows

    def test_query_length_passes_through(self, stats, two_terms):
        idx = LATENCY_FEATURE_NAMES.index("query_length")
        assert latency_features([two_terms[0]], stats)[idx] == 1.0
        assert latency_features(list(two_terms), stats)[idx] == 2.0

    def test_posting_length_is_max_over_terms(self, stats, two_terms):
        a, b = two_terms
        idx = LATENCY_FEATURE_NAMES.index("posting_list_length")
        combined = latency_features([a, b], stats)
        assert combined[idx] == max(
            stats.get(a).posting_length, stats.get(b).posting_length
        )


class TestFeatureTable:
    def test_quality_table(self, stats, two_terms):
        table = feature_table([two_terms[0]], stats, "quality")
        assert [name for name, _ in table] == list(QUALITY_FEATURE_NAMES)

    def test_latency_table(self, stats, two_terms):
        table = feature_table([two_terms[0]], stats, "latency")
        assert [name for name, _ in table] == list(LATENCY_FEATURE_NAMES)

    def test_unknown_kind(self, stats, two_terms):
        with pytest.raises(ValueError):
            feature_table([two_terms[0]], stats, "nope")
