"""Tests for predictor calibration analysis."""

import numpy as np
import pytest

from repro.predictors import reliability, zero_class_calibration
from repro.workloads import training_queries


class TestReliability:
    def test_perfectly_calibrated(self):
        rng = np.random.default_rng(0)
        predicted = rng.uniform(0, 1, size=20_000)
        outcomes = rng.uniform(0, 1, size=20_000) < predicted
        report = reliability(predicted, outcomes, n_bins=10)
        assert report.expected_calibration_error < 0.03
        assert report.n_samples == 20_000

    def test_overconfident_model_has_high_ece(self):
        # Model always says 0.99 but the event happens half the time.
        predicted = np.full(1000, 0.99)
        outcomes = np.arange(1000) % 2 == 0
        report = reliability(predicted, outcomes)
        assert report.expected_calibration_error > 0.4
        assert len(report.bins) == 1
        assert report.bins[0].gap > 0.4

    def test_empty_buckets_dropped(self):
        predicted = np.array([0.05, 0.95])
        outcomes = np.array([False, True])
        report = reliability(predicted, outcomes, n_bins=10)
        assert len(report.bins) == 2

    def test_edge_probability_one_included(self):
        report = reliability(np.array([1.0]), np.array([True]), n_bins=5)
        assert report.bins[-1].count == 1

    def test_render(self):
        report = reliability(np.array([0.2, 0.8]), np.array([False, True]))
        text = report.render()
        assert "ECE" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            reliability(np.array([0.5]), np.array([True, False]))
        with pytest.raises(ValueError):
            reliability(np.array([1.5]), np.array([True]))
        with pytest.raises(ValueError):
            reliability(np.zeros(0), np.zeros(0, dtype=bool))
        with pytest.raises(ValueError):
            reliability(np.array([0.5]), np.array([True]), n_bins=0)


class TestZeroClassCalibration:
    def test_bank_calibration_reasonable(self, unit_testbed):
        queries = training_queries(unit_testbed.corpus, 40, seed=777)
        report = zero_class_calibration(unit_testbed.bank, queries, n_bins=5)
        assert report.n_samples == 40 * unit_testbed.cluster.n_shards
        assert 0.0 <= report.expected_calibration_error <= 1.0
        # The gate at 0.9 is only sane if high-confidence zeros are mostly
        # real zeros.
        top = [b for b in report.bins if b.lo >= 0.8]
        if top:
            pooled = sum(b.empirical_rate * b.count for b in top) / sum(
                b.count for b in top
            )
            assert pooled > 0.6
