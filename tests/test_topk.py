"""Unit + property tests for the top-K collector."""

import heapq

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.retrieval import TopKCollector


class TestTopK:
    def test_keeps_best_k(self):
        collector = TopKCollector(2)
        for doc, score in [(1, 1.0), (2, 3.0), (3, 2.0)]:
            collector.offer(doc, score)
        assert collector.results() == [(2, 3.0), (3, 2.0)]

    def test_tie_break_prefers_smaller_doc_id(self):
        collector = TopKCollector(1)
        collector.offer(7, 5.0)
        collector.offer(3, 5.0)
        assert collector.results() == [(3, 5.0)]

    def test_tie_break_insertion_order_independent(self):
        a = TopKCollector(2)
        b = TopKCollector(2)
        entries = [(1, 2.0), (2, 2.0), (3, 2.0)]
        for doc, score in entries:
            a.offer(doc, score)
        for doc, score in reversed(entries):
            b.offer(doc, score)
        assert a.results() == b.results()

    def test_threshold_before_full(self):
        collector = TopKCollector(3)
        collector.offer(1, 5.0)
        assert collector.threshold() == float("-inf")
        assert collector.would_enter(-100.0)

    def test_threshold_after_full(self):
        collector = TopKCollector(2)
        collector.offer(1, 5.0)
        collector.offer(2, 3.0)
        assert collector.threshold() == 3.0
        assert collector.would_enter(3.0)  # ties may enter
        assert not collector.would_enter(2.9)

    def test_offer_returns_entry_status(self):
        collector = TopKCollector(1)
        assert collector.offer(1, 1.0)
        assert collector.offer(2, 2.0)
        assert not collector.offer(3, 0.5)

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            TopKCollector(0)


@settings(max_examples=150, deadline=None)
@given(
    entries=st.lists(
        st.tuples(st.integers(0, 500), st.floats(0, 100)), min_size=0, max_size=100
    ),
    k=st.integers(1, 12),
)
def test_matches_sort_reference(entries, k):
    """Collector output == dedup-free sort by (-score, doc_id) top-k."""
    collector = TopKCollector(k)
    for doc, score in entries:
        collector.offer(doc, score)
    expected = sorted(entries, key=lambda e: (-e[1], e[0]))[:k]
    got = collector.results()
    # The collector doesn't deduplicate doc ids (callers never offer twice),
    # so compare against the raw sorted reference.
    assert got == expected


@settings(max_examples=80, deadline=None)
@given(
    scores=st.lists(st.floats(0, 100), min_size=1, max_size=80),
    k=st.integers(1, 10),
)
def test_threshold_is_kth_best(scores, k):
    collector = TopKCollector(k)
    for i, score in enumerate(scores):
        collector.offer(i, score)
    if len(scores) < k:
        assert collector.threshold() == float("-inf")
    else:
        assert collector.threshold() == heapq.nlargest(k, scores)[-1]


class TestThresholdTieSemantics:
    """The heap-boundary tie rules the kernels' offer pre-filter relies on.

    The vectorized kernels skip collector offers with score strictly
    below the threshold on the grounds that they are guaranteed no-ops;
    scores *equal* to the threshold must still be offered because the
    doc-id tie-break can admit them.  These tests pin both halves of
    that contract at the exact boundary.
    """

    def test_equal_score_smaller_doc_enters_full_heap(self):
        collector = TopKCollector(2)
        assert collector.offer(10, 1.0)
        assert collector.offer(20, 1.0)
        # Ties threshold, smaller id than the incumbent root (doc 20).
        assert collector.offer(15, 1.0)
        assert collector.results() == [(10, 1.0), (15, 1.0)]
        assert collector.threshold() == 1.0

    def test_equal_score_larger_doc_is_rejected(self):
        collector = TopKCollector(2)
        collector.offer(10, 1.0)
        collector.offer(20, 1.0)
        assert not collector.offer(30, 1.0)
        assert collector.results() == [(10, 1.0), (20, 1.0)]

    def test_below_threshold_offer_is_a_noop(self):
        """The pre-filter theorem: score < threshold cannot change the
        heap, whatever its doc id."""
        collector = TopKCollector(2)
        collector.offer(10, 2.0)
        collector.offer(20, 1.0)
        before = collector.results()
        assert not collector.offer(0, 1.0 - 1e-12)
        assert collector.results() == before
        assert collector.threshold() == 1.0

    def test_threshold_unchanged_by_equal_score_replacement(self):
        """An admitted tie replaces the root but leaves the threshold
        float identical — the kernels compare thresholds by value to
        decide whether a segment restart is needed."""
        collector = TopKCollector(2)
        collector.offer(10, 1.0)
        collector.offer(20, 1.0)
        before = collector.threshold()
        assert collector.offer(15, 1.0)
        assert collector.threshold() == before

    def test_would_enter_admits_exact_tie(self):
        collector = TopKCollector(1)
        collector.offer(5, 3.0)
        assert collector.would_enter(3.0)
        assert not collector.would_enter(3.0 - 1e-12)

    def test_threshold_is_minus_inf_until_kth_insert(self):
        collector = TopKCollector(3)
        collector.offer(1, 5.0)
        collector.offer(2, 4.0)
        assert collector.threshold() == float("-inf")
        collector.offer(3, 3.0)
        assert collector.threshold() == 3.0
