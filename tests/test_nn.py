"""Unit + property tests for the numpy NN framework."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import (
    Adam,
    Dense,
    Dropout,
    MeanSquaredError,
    ReLU,
    SGD,
    Sequential,
    SparseCategoricalCrossentropy,
    StandardScaler,
    StepDecay,
    mlp_classifier,
    softmax,
)


def numeric_gradient(f, param, i, j, eps=1e-6):
    param[i, j] += eps
    plus = f()
    param[i, j] -= 2 * eps
    minus = f()
    param[i, j] += eps
    return (plus - minus) / (2 * eps)


class TestDense:
    def test_forward_shape(self):
        layer = Dense(4, 3, rng=np.random.default_rng(0))
        assert layer.forward(np.zeros((5, 4))).shape == (5, 3)

    def test_gradient_check_weights(self):
        rng = np.random.default_rng(1)
        model = Sequential([Dense(4, 6, rng=rng), ReLU(), Dense(6, 3, rng=rng)])
        loss = SparseCategoricalCrossentropy()
        x = rng.normal(size=(8, 4))
        y = rng.integers(0, 3, size=8)

        out = model.forward(x, training=True)
        _, grad = loss.compute(out, y)
        model.backward(grad)

        dense = model.layers[0]
        f = lambda: loss.compute(model.forward(x), y)[0]
        for i, j in [(0, 0), (1, 3), (3, 5)]:
            numeric = numeric_gradient(f, dense.W, i, j)
            assert numeric == pytest.approx(dense.dW[i, j], abs=1e-6)

    def test_gradient_check_bias(self):
        rng = np.random.default_rng(2)
        model = Sequential([Dense(3, 2, rng=rng)])
        loss = MeanSquaredError()
        x = rng.normal(size=(4, 3))
        y = rng.normal(size=(4, 2))
        out = model.forward(x, training=True)
        _, grad = loss.compute(out, y)
        model.backward(grad)
        dense = model.layers[0]
        eps = 1e-6
        dense.b[1] += eps
        plus, _ = loss.compute(model.forward(x), y)
        dense.b[1] -= 2 * eps
        minus, _ = loss.compute(model.forward(x), y)
        dense.b[1] += eps
        assert (plus - minus) / (2 * eps) == pytest.approx(dense.db[1], abs=1e-6)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            Dense(0, 3)

    def test_state_roundtrip(self):
        layer = Dense(3, 2, rng=np.random.default_rng(0))
        other = Dense(3, 2, rng=np.random.default_rng(9))
        other.load_state(layer.state())
        np.testing.assert_array_equal(layer.W, other.W)

    def test_state_shape_mismatch(self):
        layer = Dense(3, 2)
        with pytest.raises(ValueError):
            layer.load_state({"W": np.zeros((2, 2)), "b": np.zeros(2)})


class TestActivations:
    def test_relu_forward_backward(self):
        relu = ReLU()
        x = np.array([[-1.0, 0.0, 2.0]])
        out = relu.forward(x, training=True)
        np.testing.assert_array_equal(out, [[0.0, 0.0, 2.0]])
        grad = relu.backward(np.ones_like(x))
        np.testing.assert_array_equal(grad, [[0.0, 0.0, 1.0]])

    def test_dropout_inference_identity(self):
        drop = Dropout(0.5)
        x = np.ones((3, 4))
        np.testing.assert_array_equal(drop.forward(x, training=False), x)

    def test_dropout_preserves_expectation(self):
        drop = Dropout(0.5, rng=np.random.default_rng(0))
        x = np.ones((2000, 10))
        out = drop.forward(x, training=True)
        assert out.mean() == pytest.approx(1.0, abs=0.05)

    def test_dropout_validation(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestLosses:
    def test_softmax_rows_sum_to_one(self):
        probs = softmax(np.array([[1.0, 2.0, 3.0], [1000.0, 1000.0, 1000.0]]))
        np.testing.assert_allclose(probs.sum(axis=1), [1.0, 1.0])

    def test_xent_perfect_prediction_near_zero(self):
        loss = SparseCategoricalCrossentropy()
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        value, _ = loss.compute(logits, np.array([0, 1]))
        assert value == pytest.approx(0.0, abs=1e-6)

    def test_xent_target_validation(self):
        loss = SparseCategoricalCrossentropy()
        with pytest.raises(ValueError):
            loss.compute(np.zeros((2, 3)), np.array([0, 5]))

    def test_mse(self):
        loss = MeanSquaredError()
        value, grad = loss.compute(np.array([[1.0], [3.0]]), np.array([0.0, 3.0]))
        assert value == pytest.approx(0.5)
        assert grad.shape == (2, 1)


class TestOptimizers:
    def _quadratic_descends(self, optimizer):
        param = np.array([[5.0]])
        for _ in range(300):
            grad = 2.0 * param  # d/dx of x^2
            optimizer.step([(param, grad)])
        return abs(float(param[0, 0]))

    def test_sgd_converges(self):
        assert self._quadratic_descends(SGD(learning_rate=0.1)) < 1e-3

    def test_sgd_momentum_converges(self):
        assert self._quadratic_descends(SGD(learning_rate=0.05, momentum=0.9)) < 1e-2

    def test_adam_converges(self):
        assert self._quadratic_descends(Adam(learning_rate=0.1)) < 1e-2

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SGD(learning_rate=0.0)
        with pytest.raises(ValueError):
            Adam(beta1=1.0)
        with pytest.raises(ValueError):
            Adam(weight_decay=-0.1)

    def test_weight_decay_shrinks_parameters(self):
        param_plain = np.array([[5.0]])
        param_decayed = np.array([[5.0]])
        plain = Adam(learning_rate=0.01)
        decayed = Adam(learning_rate=0.01, weight_decay=0.5)
        zero_grad = np.zeros_like(param_plain)
        for _ in range(100):
            plain.step([(param_plain, zero_grad)])
            decayed.step([(param_decayed, zero_grad)])
        assert abs(param_decayed[0, 0]) < abs(param_plain[0, 0])

    def test_step_decay_halves_rate(self):
        schedule = StepDecay(Adam(learning_rate=0.1), every=10, factor=0.5)
        param = np.array([[1.0]])
        grad = np.zeros_like(param)
        for _ in range(10):
            schedule.step([(param, grad)])
        assert schedule.learning_rate == pytest.approx(0.05)
        for _ in range(10):
            schedule.step([(param, grad)])
        assert schedule.learning_rate == pytest.approx(0.025)

    def test_step_decay_still_converges(self):
        schedule = StepDecay(Adam(learning_rate=0.2), every=100, factor=0.5)
        assert self._quadratic_descends(schedule) < 1e-2

    def test_step_decay_validation(self):
        with pytest.raises(ValueError):
            StepDecay(Adam(), every=0)
        with pytest.raises(ValueError):
            StepDecay(Adam(), every=5, factor=1.5)


class TestSequential:
    def test_mlp_topology(self):
        model = mlp_classifier(7, 4, hidden_layers=5, hidden_units=128)
        dense_layers = [l for l in model.layers if isinstance(l, Dense)]
        assert len(dense_layers) == 6  # 5 hidden + output
        assert dense_layers[0].W.shape == (7, 128)
        assert dense_layers[-1].W.shape == (128, 4)

    def test_fit_reduces_loss(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(400, 5))
        y = (x[:, 0] > 0).astype(int)
        model = mlp_classifier(5, 2, hidden_layers=2, hidden_units=16)
        history = model.fit(x, y, iterations=200, batch_size=32)
        assert np.mean(history.loss[-20:]) < np.mean(history.loss[:20])
        assert model.accuracy(x, y) > 0.9

    def test_fit_seed_reproducible(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(100, 3))
        y = rng.integers(0, 2, size=100)
        runs = []
        for _ in range(2):
            model = mlp_classifier(3, 2, hidden_layers=1, hidden_units=8, seed=5)
            model.fit(x, y, iterations=50, seed=7)
            runs.append(model.predict(x))
        np.testing.assert_array_equal(runs[0], runs[1])

    def test_eval_history(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(120, 3))
        y = rng.integers(0, 2, size=120)
        model = mlp_classifier(3, 2, hidden_layers=1, hidden_units=8)
        history = model.fit(
            x, y, iterations=40, eval_set=(x, y), eval_every=10
        )
        assert history.eval_iterations == [10, 20, 30, 40]
        assert len(history.eval_accuracy) == 4

    def test_fit_validation(self):
        model = mlp_classifier(3, 2, hidden_layers=1, hidden_units=4)
        with pytest.raises(ValueError):
            model.fit(np.zeros((4, 3)), np.zeros(5))
        with pytest.raises(ValueError):
            model.fit(np.zeros((0, 3)), np.zeros(0))

    def test_predict_single_row(self):
        model = mlp_classifier(3, 2, hidden_layers=1, hidden_units=4)
        assert model.predict(np.zeros(3)).shape == (1, 2)

    def test_save_load_roundtrip(self, tmp_path):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(50, 3))
        y = rng.integers(0, 2, size=50)
        model = mlp_classifier(3, 2, hidden_layers=1, hidden_units=8)
        model.fit(x, y, iterations=20)
        path = tmp_path / "model.npz"
        model.save(path)
        clone = mlp_classifier(3, 2, hidden_layers=1, hidden_units=8, seed=99)
        clone.load(path)
        np.testing.assert_array_equal(model.predict(x), clone.predict(x))

    def test_empty_layers_rejected(self):
        with pytest.raises(ValueError):
            Sequential([])


class TestScaler:
    def test_standardizes(self):
        rng = np.random.default_rng(0)
        x = rng.normal(loc=5.0, scale=3.0, size=(500, 4))
        scaled = StandardScaler().fit_transform(x)
        np.testing.assert_allclose(scaled.mean(axis=0), 0.0, atol=1e-9)
        np.testing.assert_allclose(scaled.std(axis=0), 1.0, atol=1e-9)

    def test_constant_feature_maps_to_zero(self):
        x = np.column_stack([np.ones(10), np.arange(10.0)])
        scaled = StandardScaler().fit_transform(x)
        np.testing.assert_allclose(scaled[:, 0], 0.0)

    def test_transform_before_fit(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.zeros((2, 2)))

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            StandardScaler().fit(np.zeros(5))

    def test_state_roundtrip(self):
        scaler = StandardScaler().fit(np.random.default_rng(0).normal(size=(20, 3)))
        clone = StandardScaler.from_state(scaler.state())
        x = np.random.default_rng(1).normal(size=(5, 3))
        np.testing.assert_allclose(scaler.transform(x), clone.transform(x))


@settings(max_examples=40, deadline=None)
@given(
    batch=st.integers(1, 12),
    n_in=st.integers(1, 8),
    n_out=st.integers(1, 6),
)
def test_dense_linearity(batch, n_in, n_out):
    """Dense layers are linear: f(a+b) = f(a) + f(b) - f(0)."""
    layer = Dense(n_in, n_out, rng=np.random.default_rng(0))
    rng = np.random.default_rng(1)
    a = rng.normal(size=(batch, n_in))
    b = rng.normal(size=(batch, n_in))
    zero = layer.forward(np.zeros((batch, n_in)))
    np.testing.assert_allclose(
        layer.forward(a + b), layer.forward(a) + layer.forward(b) - zero, atol=1e-9
    )
