"""Integration tests for the cluster engine (trace replay)."""

import numpy as np
import pytest

from repro.cluster import SearchCluster
from repro.policies import AggregationPolicy, ExhaustivePolicy
from repro.retrieval import Query, QueryTrace


@pytest.fixture(scope="module")
def cluster(shards):
    return SearchCluster(shards, k=5)


def small_trace(n=30, gap_s=0.02):
    terms_pool = [("t1",), ("t2", "t12"), ("t5",), ("t11", "t3")]
    return QueryTrace(
        name="test",
        queries=[
            Query(
                query_id=i,
                terms=terms_pool[i % len(terms_pool)],
                arrival_time=i * gap_s,
            )
            for i in range(n)
        ],
    )


class TestRunTrace:
    def test_exhaustive_run_completes_all(self, cluster):
        trace = small_trace()
        run = cluster.run_trace(trace, ExhaustivePolicy())
        assert len(run.records) == len(trace)
        assert all(r.n_counted == cluster.n_shards for r in run.records)
        assert all(r.latency_ms > 0 for r in run.records)

    def test_records_sorted_by_arrival(self, cluster):
        run = cluster.run_trace(small_trace(), ExhaustivePolicy())
        arrivals = [r.arrival_ms for r in run.records]
        assert arrivals == sorted(arrivals)

    def test_deterministic_replay(self, cluster):
        a = cluster.run_trace(small_trace(), ExhaustivePolicy())
        b = cluster.run_trace(small_trace(), ExhaustivePolicy())
        assert a.latencies_ms() == b.latencies_ms()
        assert a.power.average_power_w == b.power.average_power_w

    def test_power_report_bounds(self, cluster):
        run = cluster.run_trace(small_trace(), ExhaustivePolicy())
        assert run.power.average_power_w >= run.power.idle_package_w
        assert 0.0 < max(run.power.per_core_utilization) <= 1.0

    def test_budget_policy_reduces_tail(self, cluster):
        exhaustive = cluster.run_trace(small_trace(60, 0.004), ExhaustivePolicy())
        budget = cluster.run_trace(
            small_trace(60, 0.004),
            AggregationPolicy(budget_percentile=50.0, epoch_queries=10),
        )
        assert np.percentile(budget.latencies_ms(), 95) <= np.percentile(
            exhaustive.latencies_ms(), 95
        )

    def test_contention_raises_latency(self, cluster):
        sparse = cluster.run_trace(small_trace(30, gap_s=0.5), ExhaustivePolicy())
        dense = cluster.run_trace(small_trace(30, gap_s=0.001), ExhaustivePolicy())
        assert np.mean(dense.latencies_ms()) > np.mean(sparse.latencies_ms())

    def test_service_time_oracle_matches_cost_model(self, cluster):
        query = Query(query_id=0, terms=("t1",))
        result = cluster.searcher.search_shard(0, query)
        expected = cluster.cost_model.service_ms(
            result.cost, cluster.freq_scale.default_ghz
        )
        assert cluster.service_time_ms(query, 0) == pytest.approx(expected)

    def test_service_time_frequency_override(self, cluster):
        query = Query(query_id=0, terms=("t1",))
        assert cluster.service_time_ms(query, 0, freq_ghz=2.7) < cluster.service_time_ms(
            query, 0
        )

    def test_empty_cluster_rejected(self):
        with pytest.raises(ValueError):
            SearchCluster([])
