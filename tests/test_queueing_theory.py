"""Queueing-theory validation of the cluster simulator.

The ISN is a FIFO single server; with Poisson arrivals and (nearly)
deterministic service, its mean waiting time must match the M/D/1
Pollaczek-Khinchine formula  W = ρ·S / (2(1-ρ)).  A simulator that queues
wrong would corrupt every latency figure, so this is checked directly.
"""

import numpy as np
import pytest

from repro.cluster import SearchCluster
from repro.index import Document, IndexBuilder
from repro.policies import ExhaustivePolicy
from repro.retrieval import Query, QueryTrace
from repro.text import WhitespaceAnalyzer


@pytest.fixture(scope="module")
def single_shard_cluster():
    builder = IndexBuilder(0, analyzer=WhitespaceAnalyzer())
    for i in range(50):
        builder.add(Document(doc_id=i, text="alpha " * 5 + f"filler{i}"))
    return SearchCluster([builder.build()], k=5)


def poisson_trace(rate_qps: float, duration_s: float, seed: int = 0) -> QueryTrace:
    rng = np.random.default_rng(seed)
    queries = []
    t = 0.0
    i = 0
    while True:
        t += rng.exponential(1.0 / rate_qps)
        if t > duration_s:
            break
        queries.append(
            Query(query_id=i, terms=("alpha",), arrival_time=float(t))
        )
        i += 1
    return QueryTrace(name="poisson", queries=queries)


class TestMD1:
    def test_waits_match_lindley_recursion_exactly(self, single_shard_cluster):
        """The event simulator must reproduce the FIFO single-server
        Lindley recursion start_i = max(arrival_i, end_{i-1}) to the
        floating point — any deviation means the queueing is wrong."""
        cluster = single_shard_cluster
        query = Query(query_id=0, terms=("alpha",))
        service_ms = cluster.service_time_ms(query, 0)
        trace = poisson_trace(25.0, duration_s=30.0, seed=3)
        run = cluster.run_trace(trace, ExhaustivePolicy())
        waits = [record.outcomes[0].queued_ms for record in run.records]

        end = 0.0
        for record, wait in zip(run.records, waits):
            arrival = record.arrival_ms + (
                record.latency_ms - record.outcomes[0].queued_ms - service_ms
            ) / 2  # dispatch offset (symmetric network delay)
            start = max(arrival, end)
            assert wait == pytest.approx(start - arrival, abs=1e-6)
            end = start + service_ms

    def test_mean_wait_matches_pollaczek_khinchine(self, single_shard_cluster):
        cluster = single_shard_cluster
        query = Query(query_id=0, terms=("alpha",))
        service_ms = cluster.service_time_ms(query, 0)

        rho = 0.6
        rate_qps = rho / (service_ms / 1000.0)
        expected_wait = rho * service_ms / (2 * (1 - rho))
        # Queue waits are heavily autocorrelated, so one finite trace can
        # sit well off the infinite-horizon mean; average several seeds.
        means = []
        for seed in range(5):
            trace = poisson_trace(rate_qps, duration_s=60.0, seed=seed)
            run = cluster.run_trace(trace, ExhaustivePolicy())
            means.append(
                np.mean([r.outcomes[0].queued_ms for r in run.records])
            )
        assert np.mean(means) == pytest.approx(expected_wait, rel=0.2)

    def test_latency_curve_tracks_pollaczek_khinchine(self, single_shard_cluster):
        """Closed-loop validation across the sub-knee operating range: the
        measured mean wait must track the M/D/1 curve at every utilization
        a budget policy would actually run at, not just one point — and
        the measured curve must be monotone in offered load (the knee
        detector's core assumption)."""
        cluster = single_shard_cluster
        query = Query(query_id=0, terms=("alpha",))
        service_ms = cluster.service_time_ms(query, 0)

        measured = []
        for rho in (0.3, 0.5, 0.7):
            rate_qps = rho / (service_ms / 1000.0)
            expected_wait = rho * service_ms / (2 * (1 - rho))
            means = []
            for seed in range(5):
                trace = poisson_trace(rate_qps, duration_s=60.0, seed=seed)
                run = cluster.run_trace(trace, ExhaustivePolicy())
                means.append(
                    np.mean([r.outcomes[0].queued_ms for r in run.records])
                )
            measured.append(float(np.mean(means)))
            assert measured[-1] == pytest.approx(expected_wait, rel=0.2)
        assert measured == sorted(measured)

    def test_utilization_matches_offered_load(self, single_shard_cluster):
        cluster = single_shard_cluster
        query = Query(query_id=0, terms=("alpha",))
        service_ms = cluster.service_time_ms(query, 0)
        rho = 0.4
        rate_qps = rho / (service_ms / 1000.0)
        trace = poisson_trace(rate_qps, duration_s=60.0, seed=5)
        run = cluster.run_trace(trace, ExhaustivePolicy())
        assert run.power.per_core_utilization[0] == pytest.approx(rho, rel=0.1)

    def test_latency_is_wait_plus_service_plus_network(self, single_shard_cluster):
        cluster = single_shard_cluster
        query = Query(query_id=0, terms=("alpha",))
        service_ms = cluster.service_time_ms(query, 0)
        trace = poisson_trace(5.0, duration_s=10.0, seed=7)  # light load
        run = cluster.run_trace(trace, ExhaustivePolicy())
        overhead = 2 * cluster.network.delay_ms()
        for record in run.records:
            wait = record.outcomes[0].queued_ms
            assert record.latency_ms == pytest.approx(
                wait + service_ms + overhead, abs=0.01
            )
