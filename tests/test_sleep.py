"""Tests for PowerNap-style sleep states."""

import numpy as np
import pytest

from repro.cluster import PowerModel, SearchCluster, SleepPolicy
from repro.cluster.power import EnergyMeter
from repro.policies import ExhaustivePolicy
from repro.retrieval import Query, QueryTrace


class TestSleepPolicy:
    def test_gap_accounting(self):
        policy = SleepPolicy(nap_after_ms=50.0, wake_ms=2.0)
        assert policy.nap_ms_in_gap(30.0) == 0.0
        assert policy.nap_ms_in_gap(80.0) == 30.0
        assert policy.wake_penalty_ms(30.0) == 0.0
        assert policy.wake_penalty_ms(80.0) == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SleepPolicy(nap_after_ms=-1.0)
        with pytest.raises(ValueError):
            SleepPolicy(wake_ms=-1.0)
        with pytest.raises(ValueError):
            SleepPolicy(nap_power_w=-0.1)


class TestMeterNapCredit:
    def test_nap_reduces_total_energy(self):
        model = PowerModel()
        plain = EnergyMeter(model)
        napping = EnergyMeter(model)
        napping.add_nap(500.0, nap_power_w=0.0)
        assert napping.total_energy_mj(1000.0) < plain.total_energy_mj(1000.0)
        assert napping.nap_ms == 500.0

    def test_savings_capped_at_idle_energy(self):
        model = PowerModel()
        meter = EnergyMeter(model)
        meter.add_nap(1e9, nap_power_w=0.0)  # absurd credit
        assert meter.total_energy_mj(1000.0) >= 0.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            EnergyMeter(PowerModel()).add_nap(-1.0, 0.0)


def sparse_trace(n=10, gap_s=0.5):
    return QueryTrace(
        name="sparse",
        queries=[
            Query(query_id=i, terms=("t1",), arrival_time=i * gap_s)
            for i in range(n)
        ],
    )


class TestNappingRuns:
    def test_nap_saves_power_at_light_load(self, shards):
        cluster = SearchCluster(shards, k=5)
        trace = sparse_trace()
        awake = cluster.run_trace(trace, ExhaustivePolicy())
        napping = cluster.run_trace(
            trace, ExhaustivePolicy(), sleep=SleepPolicy(nap_after_ms=20.0)
        )
        assert napping.power.average_power_w < awake.power.average_power_w

    def test_wake_latency_charged(self, shards):
        cluster = SearchCluster(shards, k=5)
        trace = sparse_trace()
        awake = cluster.run_trace(trace, ExhaustivePolicy())
        napping = cluster.run_trace(
            trace, ExhaustivePolicy(),
            sleep=SleepPolicy(nap_after_ms=20.0, wake_ms=5.0),
        )
        # Every query wakes sleeping ISNs: latency rises by ~the wake time.
        delta = np.mean(napping.latencies_ms()) - np.mean(awake.latencies_ms())
        assert 3.0 < delta < 7.0

    def test_busy_runs_never_nap(self, shards):
        cluster = SearchCluster(shards, k=5)
        dense = QueryTrace(
            name="dense",
            queries=[
                Query(query_id=i, terms=("t1",), arrival_time=i * 0.001)
                for i in range(50)
            ],
        )
        awake = cluster.run_trace(dense, ExhaustivePolicy())
        napping = cluster.run_trace(
            dense, ExhaustivePolicy(), sleep=SleepPolicy(nap_after_ms=1000.0)
        )
        # Gaps never exceed the nap threshold mid-trace; only the initial
        # and trailing gaps can nap, so latency is unchanged.
        assert napping.latencies_ms() == pytest.approx(awake.latencies_ms())

    def test_untouched_isn_naps_whole_trace(self, shards):
        from repro.cluster.types import Decision

        class OnlyShardZero:
            name = "only0"

            def decide(self, query, view):
                return Decision(shard_ids=(0,))

            def observe(self, record):
                pass

        cluster = SearchCluster(shards, k=5)
        trace = sparse_trace()
        run = cluster.run_trace(
            trace, OnlyShardZero(), sleep=SleepPolicy(nap_after_ms=20.0)
        )
        # Shards 1-3 slept essentially the entire run (trailing credit).
        idle_power = cluster.power_model.core_static_w
        assert run.power.per_core_utilization[1] == 0.0
        assert run.power.average_power_w < cluster.power_model.idle_package_w(
            len(shards)
        ) + 2.0
