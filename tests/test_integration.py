"""End-to-end integration: the paper's qualitative claims at unit scale.

These are the "does the whole system reproduce the story" tests: weaker
than the full-scale benchmark assertions, but they run in CI time and
exercise every layer together.
"""

import numpy as np
import pytest

from repro.metrics import summarize_run


@pytest.fixture(scope="module")
def summaries(unit_testbed):
    trace = unit_testbed.wikipedia_trace
    truth = unit_testbed.truth_for(trace)
    return {
        name: summarize_run(unit_testbed.run(trace, name), truth, trace.name)
        for name in (
            "exhaustive", "aggregation", "taily", "rank_s",
            "cottage_without_ml", "cottage_isn", "cottage",
        )
    }


class TestPaperStory:
    def test_exhaustive_is_perfect_and_slowest_class(self, summaries):
        assert summaries["exhaustive"].avg_precision == 1.0
        assert summaries["exhaustive"].avg_selected_isns == 8  # all unit ISNs

    def test_cottage_beats_exhaustive_latency(self, summaries):
        assert summaries["cottage"].avg_latency_ms < summaries["exhaustive"].avg_latency_ms
        assert summaries["cottage"].p95_latency_ms < summaries["exhaustive"].p95_latency_ms

    def test_cottage_quality_bounded_loss(self, summaries):
        assert summaries["cottage"].avg_precision > 0.75

    def test_cottage_uses_fewest_isns_among_quality_policies(self, summaries):
        assert summaries["cottage"].avg_selected_isns < summaries["taily"].avg_selected_isns
        assert (
            summaries["cottage"].avg_selected_isns
            < summaries["exhaustive"].avg_selected_isns
        )

    def test_cottage_searches_fewer_docs(self, summaries):
        assert (
            summaries["cottage"].avg_docs_searched
            < summaries["exhaustive"].avg_docs_searched
        )

    def test_quality_ordering_ml_beats_gamma_variant(self, summaries):
        assert (
            summaries["cottage"].avg_precision
            >= summaries["cottage_without_ml"].avg_precision - 0.02
        )

    def test_rank_s_has_worst_quality(self, summaries):
        others = [s.avg_precision for name, s in summaries.items() if name != "rank_s"]
        assert summaries["rank_s"].avg_precision <= min(others) + 0.05

    def test_aggregation_cuts_tail_but_hurts_quality(self, summaries):
        assert summaries["aggregation"].p95_latency_ms < summaries["exhaustive"].p95_latency_ms
        assert summaries["aggregation"].avg_precision < 1.0

    def test_power_ordering(self, summaries):
        # Cottage's power saving only emerges at >= small scale (boost
        # premium dominates in a tiny cluster); Taily's cut is robust.
        assert summaries["taily"].avg_power_w < summaries["exhaustive"].avg_power_w
        assert summaries["cottage"].avg_power_w < summaries["exhaustive"].avg_power_w * 1.1


class TestCrossTraceConsistency:
    def test_lucene_trace_also_improves(self, unit_testbed):
        trace = unit_testbed.lucene_trace
        truth = unit_testbed.truth_for(trace)
        exhaustive = summarize_run(unit_testbed.run(trace, "exhaustive"), truth)
        cottage = summarize_run(unit_testbed.run(trace, "cottage"), truth)
        assert cottage.avg_latency_ms < exhaustive.avg_latency_ms
        assert cottage.avg_precision > 0.7

    def test_deterministic_end_to_end(self, unit_testbed):
        trace = unit_testbed.wikipedia_trace
        a = unit_testbed.cluster.run_trace(trace, unit_testbed.make_policy("cottage"))
        b = unit_testbed.cluster.run_trace(trace, unit_testbed.make_policy("cottage"))
        assert a.latencies_ms() == b.latencies_ms()
        assert np.isclose(a.power.average_power_w, b.power.average_power_w)
