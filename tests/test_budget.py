"""Unit + property tests for Algorithm 1 (time budget determination)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BudgetInput, determine_time_budget


def isn(sid, q_k, q_half, current, boosted=None):
    return BudgetInput(
        shard_id=sid,
        quality_k=q_k,
        quality_half_k=q_half,
        latency_current_ms=current,
        latency_boosted_ms=boosted if boosted is not None else current / 1.286,
    )


class TestPaperExample:
    """The paper's Fig. 9 walkthrough (K=20).

    Re-sorted boosted-latency order is <7, 1, 13, 2, 6, 5, 15, 16, 3, 8,
    10, 11>; ISN-7 has no top-K/2 contribution so it is sacrificed, ISN-1
    (one K/2 doc, 16 ms boosted) sets the budget, and ISNs 4, 9, 12, 14
    are stage-1 cuts.  Latency values are read off the figure; only the
    ordering matters.
    """

    def _inputs(self):
        # (shard, Q^K, Q^K/2, boosted latency ms); current = boosted * 1.286
        table = [
            (1, 3, 1, 16.0),
            (2, 4, 2, 12.0),
            (3, 2, 1, 8.0),
            (4, 0, 0, 9.0),
            (5, 1, 1, 10.5),
            (6, 2, 1, 11.0),
            (7, 2, 0, 18.0),
            (8, 1, 0, 7.5),
            (9, 0, 0, 14.0),
            (10, 1, 1, 7.0),
            (11, 1, 0, 6.0),
            (12, 0, 0, 10.0),
            (13, 3, 2, 11.5),
            (14, 0, 0, 5.0),
            (15, 2, 1, 10.0),
            (16, 1, 0, 9.5),
        ]
        return [
            isn(sid, qk, qh, boosted * 1.286, boosted)
            for sid, qk, qh, boosted in table
        ]

    def test_stage1_cuts_zero_quality(self):
        decision = determine_time_budget(self._inputs())
        assert decision.cut_zero_quality == (4, 9, 12, 14)

    def test_isn7_sacrificed_isn1_sets_budget(self):
        decision = determine_time_budget(self._inputs())
        assert 7 in decision.cut_too_slow
        assert decision.time_budget_ms == pytest.approx(16.0)
        assert 1 in decision.selected

    def test_slow_contributors_boosted(self):
        decision = determine_time_budget(self._inputs())
        # ISN-1's current latency (16 * 1.286) exceeds the 16 ms budget.
        assert 1 in decision.boosted


class TestEdgeCases:
    def test_all_zero_quality_selects_nothing(self):
        decision = determine_time_budget([isn(0, 0, 0, 10.0), isn(1, 0, 0, 5.0)])
        assert decision.selected == ()
        assert decision.time_budget_ms is None
        assert decision.cut_zero_quality == (0, 1)

    def test_single_contributor(self):
        decision = determine_time_budget([isn(0, 2, 1, 10.0)])
        assert decision.selected == (0,)
        assert decision.time_budget_ms == pytest.approx(10.0 / 1.286)

    def test_no_half_k_contributor_keeps_everyone(self):
        # The pseudocode's loop never fires: initial budget (slowest
        # survivor) stands and nobody is sacrificed.
        inputs = [isn(0, 1, 0, 10.0), isn(1, 2, 0, 20.0)]
        decision = determine_time_budget(inputs)
        assert decision.selected == (0, 1)
        assert decision.time_budget_ms == pytest.approx(20.0 / 1.286)
        assert decision.cut_too_slow == ()

    def test_pivot_first_not_last(self):
        # Two K/2 contributors: the budget is the SLOWER one's boosted
        # latency (walk stops at the first pivot).
        inputs = [isn(0, 1, 1, 30.0, 20.0), isn(1, 1, 1, 15.0, 10.0)]
        decision = determine_time_budget(inputs)
        assert decision.time_budget_ms == pytest.approx(20.0)

    def test_boost_margin_boosts_proactively(self):
        inputs = [isn(0, 1, 1, 10.0, 8.0), isn(1, 1, 1, 7.5, 6.0)]
        literal = determine_time_budget(inputs, boost_margin=1.0)
        eager = determine_time_budget(inputs, boost_margin=0.5)
        assert set(literal.boosted) <= set(eager.boosted)
        assert 1 in eager.boosted  # 7.5 > 0.5 * 8.0

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            determine_time_budget([])

    def test_bad_boost_margin_rejected(self):
        with pytest.raises(ValueError):
            determine_time_budget([isn(0, 1, 1, 5.0)], boost_margin=0.0)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            BudgetInput(0, -1, 0, 1.0, 1.0)
        with pytest.raises(ValueError):
            BudgetInput(0, 1, 0, 1.0, 2.0)  # boosted slower than current


@st.composite
def budget_inputs(draw):
    n = draw(st.integers(1, 20))
    inputs = []
    for sid in range(n):
        q_k = draw(st.integers(0, 10))
        q_half = draw(st.integers(0, q_k)) if q_k else 0
        boosted = draw(st.floats(0.1, 50.0))
        ratio = draw(st.floats(1.0, 3.0))
        inputs.append(isn(sid, q_k, q_half, boosted * ratio, boosted))
    return inputs


@settings(max_examples=200, deadline=None)
@given(inputs=budget_inputs())
def test_algorithm_invariants(inputs):
    decision = determine_time_budget(inputs)
    by_id = {i.shard_id: i for i in inputs}
    all_ids = {i.shard_id for i in inputs}

    # Partition: every ISN is selected or cut, never both.
    cut = set(decision.cut_zero_quality) | set(decision.cut_too_slow)
    assert set(decision.selected) | cut == all_ids
    assert not set(decision.selected) & cut

    # Stage 1 cuts exactly the zero-Q^K ISNs.
    assert set(decision.cut_zero_quality) == {
        i.shard_id for i in inputs if i.quality_k == 0
    }

    if decision.selected:
        budget = decision.time_budget_ms
        # Every kept ISN can meet the budget at boosted frequency.
        for sid in decision.selected:
            assert by_id[sid].latency_boosted_ms <= budget + 1e-9
        # Stage-2 cuts are slower than the budget and touch no top-K/2 doc.
        for sid in decision.cut_too_slow:
            assert by_id[sid].quality_half_k == 0
            assert by_id[sid].latency_boosted_ms >= budget - 1e-9
        # Boosted ISNs are kept ISNs whose current latency misses the bar
        # (default boost_margin = 1.0 here).
        for sid in decision.boosted:
            assert sid in decision.selected
            assert by_id[sid].latency_current_ms > budget - 1e-9
        # No K/2 contributor is ever sacrificed.
        for i in inputs:
            if i.quality_k > 0 and i.quality_half_k > 0:
                assert i.shard_id in decision.selected
