"""Unit + property tests for posting lists and cursors."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.postings import (
    END_OF_LIST,
    PostingList,
    PostingListBuilder,
)


def make_list(doc_ids, tfs=None):
    doc_ids = list(doc_ids)
    tfs = tfs or [1] * len(doc_ids)
    return PostingList(
        doc_ids=np.asarray(doc_ids, dtype=np.int64),
        tfs=np.asarray(tfs, dtype=np.int32),
    )


class TestPostingList:
    def test_length_and_max_tf(self):
        postings = make_list([1, 5, 9], [2, 7, 1])
        assert len(postings) == 3
        assert postings.max_tf == 7

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            make_list([3, 2, 5])

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            make_list([2, 2])

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            PostingList(
                doc_ids=np.array([1, 2], dtype=np.int64),
                tfs=np.array([1], dtype=np.int32),
            )

    def test_empty_list(self):
        postings = make_list([])
        assert len(postings) == 0
        assert postings.max_tf == 0
        assert postings.cursor().doc() == END_OF_LIST


class TestPostingListBuilder:
    def test_builds_sorted(self):
        builder = PostingListBuilder()
        builder.add(1, 2)
        builder.add(4, 1)
        postings = builder.build()
        assert postings.doc_ids.tolist() == [1, 4]
        assert postings.tfs.tolist() == [2, 1]

    def test_rejects_out_of_order(self):
        builder = PostingListBuilder()
        builder.add(5, 1)
        with pytest.raises(ValueError):
            builder.add(3, 1)

    def test_rejects_duplicate_doc(self):
        builder = PostingListBuilder()
        builder.add(5, 1)
        with pytest.raises(ValueError):
            builder.add(5, 2)

    def test_rejects_nonpositive_tf(self):
        with pytest.raises(ValueError):
            PostingListBuilder().add(1, 0)


class TestCursor:
    def test_walks_in_order(self):
        cursor = make_list([2, 4, 8]).cursor()
        seen = []
        while cursor.doc() != END_OF_LIST:
            seen.append(cursor.doc())
            cursor.next()
        assert seen == [2, 4, 8]

    def test_next_geq_exact_hit(self):
        cursor = make_list([2, 4, 8]).cursor()
        assert cursor.next_geq(4) == 4
        assert cursor.tf() == 1

    def test_next_geq_lands_after_gap(self):
        cursor = make_list([2, 4, 8]).cursor()
        assert cursor.next_geq(5) == 8

    def test_next_geq_past_end(self):
        cursor = make_list([2, 4, 8]).cursor()
        assert cursor.next_geq(9) == END_OF_LIST
        assert cursor.exhausted()

    def test_next_geq_does_not_move_backwards(self):
        cursor = make_list([2, 4, 8]).cursor()
        cursor.next_geq(8)
        assert cursor.next_geq(3) == 8

    def test_position_and_remaining(self):
        cursor = make_list([2, 4, 8]).cursor()
        assert cursor.position == 0
        assert cursor.remaining() == 3
        cursor.next()
        assert cursor.position == 1
        assert cursor.remaining() == 2

    def test_score_requires_attachment(self):
        cursor = make_list([2]).cursor()
        with pytest.raises(AssertionError):
            cursor.score()
        cursor.scores = np.array([1.5])
        assert cursor.score() == 1.5


class TestBlockMetadata:
    def _cursor_with_blocks(self, doc_ids, scores, block_size=4):
        cursor = make_list(doc_ids).cursor()
        cursor.scores = np.asarray(scores, dtype=float)
        n_blocks = (len(scores) + block_size - 1) // block_size
        padded = np.full(n_blocks * block_size, -np.inf)
        padded[: len(scores)] = scores
        cursor.block_maxes = padded.reshape(n_blocks, block_size).max(axis=1)
        cursor.block_size = block_size
        return cursor

    def test_block_max_of_current_block(self):
        cursor = self._cursor_with_blocks(
            list(range(10, 90, 10)), [1, 5, 2, 3, 9, 1, 1, 1]
        )
        assert cursor.block_max() == 5.0  # block 0 = scores[0:4]
        cursor.next_geq(50)  # position 4 -> block 1
        assert cursor.block_max() == 9.0

    def test_block_last_doc(self):
        cursor = self._cursor_with_blocks(
            list(range(10, 90, 10)), [1, 2, 3, 4, 5, 6, 7, 8]
        )
        assert cursor.block_last_doc() == 40  # last doc of block 0
        cursor.next_geq(50)
        assert cursor.block_last_doc() == 80

    def test_partial_final_block(self):
        cursor = self._cursor_with_blocks([1, 2, 3, 4, 5, 6], [1, 1, 1, 1, 7, 2])
        cursor.next_geq(5)
        assert cursor.block_max() == 7.0
        assert cursor.block_last_doc() == 6

    def test_exhausted_cursor(self):
        cursor = self._cursor_with_blocks([1, 2], [1.0, 2.0])
        cursor.next_geq(100)
        assert cursor.block_max() == 0.0
        assert cursor.block_last_doc() == END_OF_LIST


def test_shard_term_block_maxes_dominate_scores(shards):
    from repro.index.shard import BLOCK_SIZE

    shard = shards[0]
    for term in shard.terms()[:10]:
        entry = shard.term(term)
        for i, score in enumerate(entry.scores):
            assert score <= entry.block_maxes[i // BLOCK_SIZE] + 1e-12


@settings(max_examples=200, deadline=None)
@given(
    doc_ids=st.lists(st.integers(0, 10_000), min_size=1, max_size=80, unique=True),
    targets=st.lists(st.integers(0, 11_000), min_size=1, max_size=20),
)
def test_next_geq_matches_linear_scan(doc_ids, targets):
    """Galloping next_geq must land exactly where a linear scan would."""
    doc_ids = sorted(doc_ids)
    cursor = make_list(doc_ids).cursor()
    position = 0
    for target in sorted(targets):
        while position < len(doc_ids) and doc_ids[position] < target:
            position += 1
        expected = doc_ids[position] if position < len(doc_ids) else END_OF_LIST
        assert cursor.next_geq(target) == expected


@settings(max_examples=100, deadline=None)
@given(doc_ids=st.lists(st.integers(0, 5000), min_size=1, max_size=60, unique=True))
def test_full_walk_visits_everything(doc_ids):
    doc_ids = sorted(doc_ids)
    cursor = make_list(doc_ids).cursor()
    walked = []
    while not cursor.exhausted():
        walked.append(cursor.doc())
        cursor.next()
    assert walked == doc_ids


def test_next_geq_gallop_never_bisects_full_array(monkeypatch):
    """Regression: the gallop's exit bracket is clamped to the array tail,
    so the bisect always runs on the bracketed slice.  An earlier version
    fell back to bisecting the *whole* array when the gallop overshot,
    which silently degraded long-range skips from O(log gap) to
    O(log n) — invisible to correctness tests, so pin the slice sizes.
    """
    doc_ids = list(range(0, 4000, 3))
    full = len(doc_ids)
    cursor = make_list(doc_ids).cursor()
    assert cursor.next_geq(7) == 9  # move off position 0 first

    recorded = []
    real = np.searchsorted

    def recording(a, v, side="left", sorter=None):
        recorded.append(int(np.asarray(a).size))
        return real(a, v, side=side, sorter=sorter)

    monkeypatch.setattr(np, "searchsorted", recording)

    position = cursor.position
    for target in (10, 400, 1501, 3998, 5000):
        while position < full and doc_ids[position] < target:
            position += 1
        expected = doc_ids[position] if position < full else END_OF_LIST
        assert cursor.next_geq(target) == expected
    assert recorded, "skips above should have galloped + bisected"
    assert all(size < full for size in recorded)
