"""Columnar postings arena: layout, traversal state, storage round-trip.

The arena is the data layout the vectorized kernels trust blindly —
sorted-term columns whose slices must equal the per-term posting lists
posting-for-posting, score-for-score.  A layout bug here would surface
as a subtle ranking change, so these tests compare every column against
the cursor-level ground truth.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.index import Document, IndexBuilder, PostingsArena, load_shard, save_shard
from repro.text import WhitespaceAnalyzer

VOCAB = [f"w{i}" for i in range(10)]


@pytest.fixture(scope="module")
def shard():
    builder = IndexBuilder(0, analyzer=WhitespaceAnalyzer())
    for doc_id in range(60):
        words = [VOCAB[(doc_id * 3 + j) % len(VOCAB)] for j in range(doc_id % 8 + 1)]
        builder.add(Document(doc_id=doc_id, text=" ".join(words)))
    return builder.build()


class TestLayout:
    def test_terms_sorted_and_complete(self, shard):
        arena = shard.arena
        assert arena.terms == sorted(shard.terms())
        assert arena.n_postings == int(arena.offsets[-1]) == arena.doc_ids.size

    def test_columns_match_posting_lists(self, shard):
        """Every term's arena slice equals its cursor-level posting list."""
        arena = shard.arena
        for term in shard.terms():
            entry = shard.term(term)
            run = arena.run(term)
            np.testing.assert_array_equal(run.doc_ids, entry.postings.doc_ids)
            np.testing.assert_array_equal(run.tfs, entry.postings.tfs)
            np.testing.assert_array_equal(run.scores, entry.scores)
            assert run.upper_bound == entry.upper_bound
            if entry.block_maxes is not None:
                np.testing.assert_array_equal(run.block_maxes, entry.block_maxes)
            assert run.size == len(entry.postings)

    def test_slices_are_views_not_copies(self, shard):
        """Zero-copy contract: runs alias the arena columns."""
        arena = shard.arena
        run = arena.run(arena.terms[0])
        assert run.doc_ids.base is arena.doc_ids or run.doc_ids is arena.doc_ids

    def test_missing_term_returns_none(self, shard):
        assert shard.arena.run("definitely_not_indexed") is None
        assert not shard.arena.has_term("definitely_not_indexed")


class TestTraversalState:
    def test_runs_are_independent(self, shard):
        """Each run() call returns fresh state: kernels mutate ``pos`` in
        place, and duplicated query terms must traverse separately."""
        arena = shard.arena
        term = arena.terms[0]
        a, b = arena.run(term), arena.run(term)
        a.pos = a.size
        assert b.pos == 0
        assert a.exhausted() and not b.exhausted()
        assert b.remaining() == b.size

    def test_arena_is_cached_on_shard(self, shard):
        assert shard.arena is shard.arena

    def test_build_materializes_arena_eagerly(self):
        builder = IndexBuilder(3, analyzer=WhitespaceAnalyzer())
        builder.add(Document(doc_id=0, text="w0 w1"))
        built = builder.build()
        assert built._arena is not None


class TestStorageRoundTrip:
    def test_loaded_shard_has_identical_arena(self, shard, tmp_path):
        path = tmp_path / "shard0.npz"
        save_shard(shard, path)
        loaded = load_shard(path)
        a, b = shard.arena, loaded.arena
        assert a.terms == b.terms
        for col in ("offsets", "doc_ids", "tfs", "scores",
                    "upper_bounds", "block_maxes", "block_offsets"):
            np.testing.assert_array_equal(getattr(a, col), getattr(b, col))
        assert a.block_size == b.block_size

    def test_from_shard_rebuild_matches_cached(self, shard):
        rebuilt = PostingsArena.from_shard(shard)
        cached = shard.arena
        assert rebuilt.terms == cached.terms
        np.testing.assert_array_equal(rebuilt.doc_ids, cached.doc_ids)
        np.testing.assert_array_equal(rebuilt.scores, cached.scores)
