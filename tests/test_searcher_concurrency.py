"""Concurrency stress tests for ``ShardSearcher`` memoization.

Many threads hammer one searcher with overlapping queries; the memo must
compute each unique (terms, k, strategy) key **exactly once**, every
thread must observe a fully-formed result (no torn reads), and all
threads asking for the same key must get the same object.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.retrieval import Query, ShardSearcher
from repro.retrieval.searcher import STRATEGIES

N_THREADS = 16
ROUNDS_PER_THREAD = 40


class CountingStrategy:
    """Wraps a strategy function, counting invocations per key."""

    def __init__(self, inner):
        self.inner = inner
        self.calls: dict[tuple, int] = {}
        self.lock = threading.Lock()

    def __call__(self, shard, terms, k):
        key = (tuple(terms), k)
        with self.lock:
            self.calls[key] = self.calls.get(key, 0) + 1
        return self.inner(shard, terms, k)


@pytest.fixture()
def searcher(shards):
    return ShardSearcher(shards[0], k=10, strategy="maxscore")


def distinct_queries(n: int = 12, seed: int = 5) -> list[Query]:
    rng = random.Random(seed)
    queries = []
    for i in range(n):
        terms = tuple(dict.fromkeys(f"t{rng.randint(0, 30)}" for _ in range(3)))
        queries.append(Query(query_id=i, terms=terms))
    return queries


def hammer(searcher: ShardSearcher, queries: list[Query]):
    """Drive ``searcher`` from N_THREADS threads; return results + errors."""
    barrier = threading.Barrier(N_THREADS)
    errors: list[BaseException] = []
    observed: list[dict[tuple, str]] = [dict() for _ in range(N_THREADS)]

    def worker(tid: int) -> None:
        rng = random.Random(tid)
        try:
            barrier.wait()
            for _ in range(ROUNDS_PER_THREAD):
                query = queries[rng.randrange(len(queries))]
                result = searcher.search(query)
                observed[tid][query.terms] = result.fingerprint()
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(t,)) for t in range(N_THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors, errors
    return observed


class TestExactlyOnce:
    def test_each_unique_key_computed_once(self, searcher):
        # The searcher resolves strategies from STRATEGIES at call time;
        # patch the registry entry so the counter is what actually runs.
        original = STRATEGIES[searcher.strategy]
        counting = CountingStrategy(original)
        STRATEGIES[searcher.strategy] = counting
        try:
            queries = distinct_queries()
            hammer(searcher, queries)
        finally:
            STRATEGIES[searcher.strategy] = original
        touched = {q.terms for q in queries}
        assert set(counting.calls) <= {(q.terms, 10) for q in queries}
        for key, count in counting.calls.items():
            assert count == 1, f"{key} computed {count} times"
        assert searcher.cache_stats.computations == len(counting.calls)
        assert searcher.cache_stats.size == len(counting.calls)
        assert len(counting.calls) <= len(touched)

    def test_no_torn_reads(self, searcher, shards):
        """Every thread's observation matches an independent serial run."""
        queries = distinct_queries()
        observed = hammer(searcher, queries)
        reference = ShardSearcher(shards[0], k=10, strategy="maxscore")
        expected = {q.terms: reference.search(q).fingerprint() for q in queries}
        for per_thread in observed:
            for terms, fingerprint in per_thread.items():
                assert fingerprint == expected[terms]

    def test_same_key_returns_same_object(self, searcher):
        query = distinct_queries(1)[0]
        results = []
        barrier = threading.Barrier(N_THREADS)

        def worker():
            barrier.wait()
            results.append(searcher.search(query))

        threads = [threading.Thread(target=worker) for _ in range(N_THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        first = results[0]
        assert all(result is first for result in results)
        assert searcher.cache_stats.computations == 1

    def test_error_does_not_poison_the_cache(self, shards):
        searcher = ShardSearcher(shards[0], k=10, strategy="maxscore")
        query = Query(query_id=0, terms=("t1",))
        failures = iter([True, False])

        original = STRATEGIES["maxscore"]

        def flaky(shard, terms, k):
            if next(failures):
                raise RuntimeError("transient")
            return original(shard, terms, k)

        STRATEGIES["maxscore"] = flaky
        try:
            with pytest.raises(RuntimeError):
                searcher.search(query)
            result = searcher.search(query)  # retried, not cached-broken
        finally:
            STRATEGIES["maxscore"] = original
        assert result.hits == searcher.search(query).hits
        assert searcher.cache_stats.computations == 1


class TestCacheKeyRegression:
    """The memo key must include k and strategy, not query terms alone.

    Regression for a bug where a searcher reused at a different ``k``
    served the stale, shorter hit list computed for the original ``k``.
    """

    def test_changing_k_recomputes_instead_of_truncating(self, shards):
        searcher = ShardSearcher(shards[0], k=3, strategy="maxscore")
        query = Query(query_id=0, terms=("t1", "t2"))
        small = searcher.search(query)
        assert len(small.hits) <= 3
        searcher.k = 50
        large = searcher.search(query)
        fresh = ShardSearcher(shards[0], k=50, strategy="maxscore").search(query)
        assert large.fingerprint() == fresh.fingerprint()
        assert len(large.hits) > len(small.hits)
        # Both keys stay live: flipping back is a pure cache hit.
        searcher.k = 3
        again = searcher.search(query)
        assert again is small

    def test_changing_strategy_recomputes(self, shards):
        searcher = ShardSearcher(shards[0], k=10, strategy="maxscore")
        query = Query(query_id=0, terms=("t1", "t2"))
        pruned = searcher.search(query)
        searcher.strategy = "exhaustive"
        full = searcher.search(query)
        # Same ranking, but the cost counters prove it really re-ran the
        # other evaluator rather than serving the memoized maxscore run.
        assert full.doc_ids() == pruned.doc_ids()
        assert full.cost.postings_skipped == 0
        assert searcher.cache_stats.computations == 2

    def test_search_terms_uses_current_k(self, shards):
        searcher = ShardSearcher(shards[0], k=2, strategy="maxscore")
        first = searcher.search_terms(["t1", "t2"])
        searcher.k = 20
        second = searcher.search_terms(["t1", "t2"])
        assert len(second.hits) >= len(first.hits)
        assert len(first.hits) <= 2
