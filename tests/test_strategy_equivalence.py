"""Property-based strategy equivalence over Hypothesis-generated corpora.

The retrieval layer's load-bearing invariant: every disjunctive evaluation
strategy returns the same top-k as vectorized exhaustive evaluation — same
doc ids, scores within 1e-9 — on *any* corpus and query, including the
corners a hand-picked corpus misses (empty queries, out-of-vocabulary
terms, k beyond the corpus, duplicated query terms, single-doc shards).
Runs under the ``dev``/``ci`` Hypothesis profiles registered in
``conftest.py``.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index import Document, IndexBuilder, open_store_buffer, serialize_shard
from repro.retrieval import (
    block_max_wand_search,
    block_max_wand_search_kernel,
    conjunctive_search,
    conjunctive_search_kernel,
    exhaustive_search,
    exhaustive_search_daat,
    maxscore_search,
    maxscore_search_kernel,
    wand_search,
    wand_search_kernel,
)
from repro.text import WhitespaceAnalyzer

CHALLENGERS = {
    "exhaustive_daat": exhaustive_search_daat,
    "maxscore": maxscore_search,
    "wand": wand_search,
    "block_max_wand": block_max_wand_search,
}

VOCAB = [f"w{i}" for i in range(12)]

# A document is a non-empty bag of vocabulary words; a corpus a non-empty
# doc list.  Small bounds keep each example's index build around a
# millisecond while still producing skewed tfs, ties and empty postings.
documents = st.lists(
    st.lists(st.sampled_from(VOCAB), min_size=1, max_size=25),
    min_size=1,
    max_size=40,
)

# Queries may repeat terms and may include words no document contains.
queries = st.lists(
    st.sampled_from(VOCAB + ["oov_a", "oov_b"]), min_size=0, max_size=5
)

ks = st.integers(min_value=1, max_value=60)


def build_shard(word_lists: list[list[str]]):
    builder = IndexBuilder(0, analyzer=WhitespaceAnalyzer())
    for doc_id, words in enumerate(word_lists):
        builder.add(Document(doc_id=doc_id, text=" ".join(words)))
    return builder.build()


def assert_same_topk(reference, challenger):
    """Same hits up to float-summation order.

    Strategies sum a document's term scores in different orders, so
    genuinely tied documents can differ by 1 ulp and swap at the tie —
    scores must match pairwise within 1e-9, and doc ids may differ only
    where the reference scores tie.
    """
    assert len(challenger.hits) == len(reference.hits)
    for (_, sc), (_, sr) in zip(challenger.hits, reference.hits):
        assert sc == pytest.approx(sr, abs=1e-9)
    ref_scores = [s for _, s in reference.hits]
    for i, ((dc, _), (dr, sr)) in enumerate(zip(challenger.hits, reference.hits)):
        if dc != dr:
            tied = [j for j, s in enumerate(ref_scores) if abs(s - sr) <= 1e-9]
            assert len(tied) > 1 or i == len(reference.hits) - 1


class TestPropertyEquivalence:
    @given(docs=documents, query=queries, k=ks)
    def test_all_strategies_match_exhaustive(self, docs, query, k):
        shard = build_shard(docs)
        reference = exhaustive_search(shard, query, k)
        for fn in CHALLENGERS.values():
            assert_same_topk(reference, fn(shard, query, k))

    @given(docs=documents, query=queries, k=ks)
    def test_pruning_never_does_more_work(self, docs, query, k):
        shard = build_shard(docs)
        full = exhaustive_search(shard, query, k)
        for name in ("maxscore", "wand", "block_max_wand"):
            pruned = CHALLENGERS[name](shard, query, k)
            assert pruned.cost.docs_evaluated <= full.cost.docs_evaluated

    @given(docs=documents, k=ks)
    def test_k_beyond_corpus_returns_every_match(self, docs, k):
        """With k >= corpus size the top-k is simply every matching doc."""
        shard = build_shard(docs)
        query = ["w0", "w1"]
        reference = exhaustive_search(shard, query, k + len(docs))
        for fn in CHALLENGERS.values():
            assert_same_topk(reference, fn(shard, query, k + len(docs)))


class TestExplicitEdgeCases:
    """The corners the issue calls out, pinned without Hypothesis."""

    @pytest.fixture(scope="class")
    def shard(self):
        # Deterministic skewed corpus: w0 everywhere, w11 in one doc.
        return build_shard(
            [[VOCAB[min(j, i % 12)] for j in range(i % 7 + 1)] for i in range(50)]
        )

    @pytest.mark.parametrize("name", sorted(CHALLENGERS))
    def test_empty_query(self, shard, name):
        assert CHALLENGERS[name](shard, [], 10).hits == []

    @pytest.mark.parametrize("name", sorted(CHALLENGERS))
    def test_all_terms_oov(self, shard, name):
        assert CHALLENGERS[name](shard, ["nope", "missing"], 10).hits == []

    @pytest.mark.parametrize("name", sorted(CHALLENGERS))
    def test_oov_mixed_with_real_terms(self, shard, name):
        reference = exhaustive_search(shard, ["w0", "nope"], 10)
        assert_same_topk(reference, CHALLENGERS[name](shard, ["w0", "nope"], 10))
        assert reference.hits  # the real term still matches

    @pytest.mark.parametrize("name", sorted(CHALLENGERS))
    def test_duplicate_terms(self, shard, name):
        """Duplicated terms double-count consistently in every strategy."""
        query = ["w0", "w0", "w1", "w1", "w1"]
        reference = exhaustive_search(shard, query, 10)
        assert_same_topk(reference, CHALLENGERS[name](shard, query, 10))

    @pytest.mark.parametrize("name", sorted(CHALLENGERS))
    def test_k_larger_than_corpus(self, shard, name):
        reference = exhaustive_search(shard, ["w0"], 10_000)
        challenger = CHALLENGERS[name](shard, ["w0"], 10_000)
        assert_same_topk(reference, challenger)
        assert len(reference.hits) == shard.doc_freq("w0")


class TestCompressedStoreEquivalence:
    """Compressed mmap-backed shards are *bit-identical* to in-memory ones.

    Stronger than ``assert_same_topk``: the store round-trip must not
    change a single bit of any strategy's output, so fingerprints (repr
    of every score, plus all ``CostStats`` counters) are compared for
    both the scalar references and the arena kernels, kernels forced on
    (``min_postings=0``) so small Hypothesis corpora exercise the
    vectorized decode path.
    """

    PAIRS = {
        "maxscore": maxscore_search,
        "wand": wand_search,
        "block_max_wand": block_max_wand_search,
        "conjunctive": conjunctive_search,
    }
    KERNELS = {
        "maxscore": lambda s, q, k: maxscore_search_kernel(s, q, k, min_postings=0),
        "wand": wand_search_kernel,
        "block_max_wand": block_max_wand_search_kernel,
        "conjunctive": conjunctive_search_kernel,
    }

    @given(docs=documents, query=queries, k=ks)
    def test_scalars_bit_identical_on_compressed(self, docs, query, k):
        shard = build_shard(docs)
        reopened = open_store_buffer(serialize_shard(shard))
        for name, fn in self.PAIRS.items():
            want = fn(shard, list(query), k).fingerprint()
            assert fn(reopened, list(query), k).fingerprint() == want, name

    @given(docs=documents, query=queries, k=ks)
    def test_kernels_bit_identical_on_compressed(self, docs, query, k):
        shard = build_shard(docs)
        reopened = open_store_buffer(serialize_shard(shard))
        for name, fn in self.KERNELS.items():
            want = fn(shard, list(query), k).fingerprint()
            assert fn(reopened, list(query), k).fingerprint() == want, name

    @given(docs=documents, query=queries, k=ks)
    def test_compressed_kernels_match_uncompressed_scalars(self, docs, query, k):
        """The cross-check the storage layer's contract is named for."""
        shard = build_shard(docs)
        reopened = open_store_buffer(serialize_shard(shard))
        for name in self.PAIRS:
            want = self.PAIRS[name](shard, list(query), k).fingerprint()
            got = self.KERNELS[name](reopened, list(query), k).fingerprint()
            assert got == want, name
