"""Integration tests for the experiment harnesses (unit-scale testbed).

Each harness must run end to end, produce a well-formed result, and render
a report.  The benchmark suite asserts the paper shapes at full scale;
here we assert structural correctness only.
"""

import pytest

from repro.experiments import (
    fig02_variation,
    fig03_policy_example,
    fig04_frequency,
    fig06_score_distribution,
    fig07_quality_predictor,
    fig08_latency_predictor,
    fig09_budget_example,
    fig10_latency,
    fig11_quality,
    fig12_scatter,
    fig13_active_isns,
    fig14_power,
    fig15_ablation,
    headline,
    tables_features,
)
from repro.experiments.testbed import Scale


class TestScale:
    def test_presets_ordered_by_size(self):
        unit, small, full = Scale.unit(), Scale.small(), Scale.full()
        assert unit.corpus.n_docs < small.corpus.n_docs < full.corpus.n_docs
        assert unit.n_training_queries < small.n_training_queries


class TestTestbed:
    def test_build_components(self, unit_testbed):
        tb = unit_testbed
        assert tb.cluster.n_shards == tb.scale.n_shards
        assert tb.bank.trained
        assert len(tb.wikipedia_trace) > 0
        assert len(tb.lucene_trace) > 0

    def test_policy_factory_names(self, unit_testbed):
        for name in unit_testbed.ABLATIONS + ("aggregation", "rank_s"):
            assert unit_testbed.make_policy(name).name == name

    def test_policy_factory_unknown(self, unit_testbed):
        with pytest.raises(ValueError):
            unit_testbed.make_policy("bogus")

    def test_policies_are_fresh_instances(self, unit_testbed):
        assert unit_testbed.make_policy("aggregation") is not unit_testbed.make_policy(
            "aggregation"
        )

    def test_run_cache(self, unit_testbed):
        trace = unit_testbed.wikipedia_trace
        assert unit_testbed.run(trace, "exhaustive") is unit_testbed.run(
            trace, "exhaustive"
        )

    def test_truth_covers_trace(self, unit_testbed):
        truth = unit_testbed.truth_for(unit_testbed.wikipedia_trace)
        for query in unit_testbed.wikipedia_trace:
            assert query in truth


class TestHarnesses:
    def test_fig02(self, unit_testbed):
        result = fig02_variation.run(unit_testbed)
        assert sum(c for _, _, c in result.latency_bins) == result.n_queries
        assert sum(result.contributing_histogram.values()) > 0
        assert "Fig. 2" in fig02_variation.format_report(result)

    def test_fig03(self, unit_testbed):
        result = fig03_policy_example.run(unit_testbed)
        assert len(result.service_ms) == unit_testbed.cluster.n_shards
        assert {o.policy for o in result.outcomes} == {
            "exhaustive", "aggregation", "selective (taily)", "cottage",
        }
        assert "Fig. 3" in fig03_policy_example.format_report(result)

    def test_fig04(self, unit_testbed):
        result = fig04_frequency.run(unit_testbed)
        assert result.speedup == pytest.approx(2.7 / 1.2)
        assert "Fig. 4" in fig04_frequency.format_report(result)

    def test_fig06(self, unit_testbed):
        result = fig06_score_distribution.run(unit_testbed)
        assert result.true_above_kth >= 0
        assert "Fig. 6" in fig06_score_distribution.format_report(result)

    def test_fig07(self, unit_testbed):
        result = fig07_quality_predictor.run(
            unit_testbed, iterations=40, eval_every=20
        )
        assert result.curve_iterations == [20, 40]
        assert len(result.per_isn_accuracy) == unit_testbed.cluster.n_shards
        assert "Fig. 7" in fig07_quality_predictor.format_report(result)

    def test_fig08(self, unit_testbed):
        result = fig08_latency_predictor.run(
            unit_testbed, iterations=40, eval_every=20
        )
        assert result.curve_iterations == [20, 40]
        assert all(us > 0 for us in result.per_isn_inference_us)
        assert "Fig. 8" in fig08_latency_predictor.format_report(result)

    def test_fig09(self, unit_testbed):
        result = fig09_budget_example.run(unit_testbed)
        assert len(result.inputs) == unit_testbed.cluster.n_shards
        assert "time budget" in fig09_budget_example.format_report(result)

    def test_fig10(self, unit_testbed):
        results = fig10_latency.run(unit_testbed)
        assert set(results) == {"wikipedia", "lucene"}
        for result in results.values():
            assert set(result.avg_ms) == set(fig10_latency.POLICIES)
            assert all(v > 0 for v in result.avg_ms.values())
        assert "Fig. 10" in fig10_latency.format_report(results)

    def test_fig12(self, unit_testbed):
        result = fig12_scatter.run(unit_testbed)
        assert set(result.points) == set(fig12_scatter.POLICIES)
        for fraction in result.fast_good_fraction.values():
            assert 0.0 <= fraction <= 1.0
        assert "Fig. 12" in fig12_scatter.format_report(result)

    def test_fig14(self, unit_testbed):
        result = fig14_power.run(unit_testbed)
        assert result.idle_w > 0
        for row in result.power_w.values():
            assert all(v >= result.idle_w for v in row.values())
        assert "Fig. 14" in fig14_power.format_report(result)

    def test_fig15(self, unit_testbed):
        result = fig15_ablation.run(unit_testbed)
        for rows in result.rows.values():
            assert [row.scheme for row in rows] == list(fig15_ablation.SCHEMES)
        assert "Fig. 15" in fig15_ablation.format_report(result)

    def test_fig11(self, unit_testbed):
        result = fig11_quality.run(unit_testbed)
        assert result.p_at_10["wikipedia"]["exhaustive"] == 1.0
        assert "Fig. 11" in fig11_quality.format_report(result)

    def test_fig13(self, unit_testbed):
        result = fig13_active_isns.run(unit_testbed)
        n = unit_testbed.cluster.n_shards
        assert result.active["wikipedia"]["exhaustive"] == n
        assert "Fig. 13" in fig13_active_isns.format_report(result)

    def test_tables(self, unit_testbed):
        result = tables_features.run(unit_testbed)
        assert len(result.quality_table) == 10
        assert len(result.latency_table) == 15
        report = tables_features.format_report(result)
        assert "Table I" in report and "Table II" in report

    def test_headline(self, unit_testbed):
        result = headline.run(unit_testbed)
        assert result.latency_speedup > 1.0
        assert 0.0 < result.p_at_10 <= 1.0
        assert "Headline" in headline.format_report(result)
