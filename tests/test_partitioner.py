"""Unit + property tests for document-allocation policies."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index import (
    Document,
    PARTITIONERS,
    partition,
    partition_hash,
    partition_random,
    partition_round_robin,
    partition_topical,
)


def docs_with_topics(n, n_topics=4):
    return [Document(doc_id=i, text="x", topic=i % n_topics) for i in range(n)]


class TestRoundRobin:
    def test_deals_evenly(self):
        groups = partition_round_robin(docs_with_topics(10), 3)
        assert [len(g) for g in groups] == [4, 3, 3]

    def test_single_shard(self):
        groups = partition_round_robin(docs_with_topics(5), 1)
        assert len(groups[0]) == 5


class TestRandom:
    def test_deterministic_by_seed(self):
        docs = docs_with_topics(50)
        a = partition_random(docs, 4, seed=1)
        b = partition_random(docs, 4, seed=1)
        assert [[d.doc_id for d in g] for g in a] == [[d.doc_id for d in g] for g in b]

    def test_different_seeds_differ(self):
        docs = docs_with_topics(50)
        a = partition_random(docs, 4, seed=1)
        b = partition_random(docs, 4, seed=2)
        assert [[d.doc_id for d in g] for g in a] != [[d.doc_id for d in g] for g in b]


class TestHash:
    def test_deterministic(self):
        docs = docs_with_topics(30)
        assert partition_hash(docs, 4) == partition_hash(docs, 4)


class TestTopical:
    def test_topic_stays_within_spread_shards(self):
        docs = docs_with_topics(120, n_topics=6)
        groups = partition_topical(docs, 8, spread=2)
        for topic in range(6):
            shards_for_topic = {
                sid
                for sid, group in enumerate(groups)
                if any(d.topic == topic for d in group)
            }
            assert len(shards_for_topic) <= 2

    def test_balanced_sizes(self):
        docs = docs_with_topics(160, n_topics=8)
        groups = partition_topical(docs, 8, spread=2)
        sizes = [len(g) for g in groups]
        assert max(sizes) - min(sizes) <= len(docs) // 4

    def test_unlabelled_fall_back_to_hash(self):
        docs = [Document(doc_id=i, text="x") for i in range(20)]
        groups = partition_topical(docs, 4)
        assert sum(len(g) for g in groups) == 20

    def test_spread_capped_at_n_shards(self):
        docs = docs_with_topics(20, n_topics=2)
        groups = partition_topical(docs, 2, spread=10)
        assert sum(len(g) for g in groups) == 20

    def test_rejects_bad_spread(self):
        with pytest.raises(ValueError):
            partition_topical(docs_with_topics(4), 2, spread=0)


class TestDispatch:
    def test_named_policies(self):
        docs = docs_with_topics(12)
        for name in PARTITIONERS:
            groups = partition(docs, 3, policy=name)
            assert sum(len(g) for g in groups) == 12

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            partition(docs_with_topics(4), 2, policy="nope")

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            partition_round_robin(docs_with_topics(4), 0)


@settings(max_examples=60, deadline=None)
@given(
    n_docs=st.integers(1, 120),
    n_shards=st.integers(1, 12),
    policy=st.sampled_from(sorted(PARTITIONERS)),
)
def test_partition_is_exact_cover(n_docs, n_shards, policy):
    """Every document lands on exactly one shard, none invented or lost."""
    docs = docs_with_topics(n_docs)
    groups = partition(docs, n_shards, policy=policy)
    assert len(groups) == n_shards
    all_ids = [d.doc_id for g in groups for d in g]
    assert sorted(all_ids) == list(range(n_docs))
