"""Tests for index and predictor-bank persistence."""

import numpy as np
import pytest

from repro.cluster import SearchCluster
from repro.index import load_shard, load_shards, save_shard, save_shards
from repro.predictors import PredictorBank
from repro.retrieval import Query, exhaustive_search, maxscore_search


class TestShardRoundtrip:
    def test_metadata_preserved(self, shards, tmp_path):
        path = tmp_path / "shard.npz"
        save_shard(shards[0], path)
        loaded = load_shard(path)
        original = shards[0]
        assert loaded.shard_id == original.shard_id
        assert loaded.n_docs == original.n_docs
        assert loaded.avg_doc_length == original.avg_doc_length
        assert loaded.n_docs_global == original.n_docs_global
        assert loaded.doc_lengths == original.doc_lengths
        assert sorted(loaded.terms()) == sorted(original.terms())

    def test_postings_and_scores_identical(self, shards, tmp_path):
        path = tmp_path / "shard.npz"
        save_shard(shards[0], path)
        loaded = load_shard(path)
        for term in shards[0].terms():
            a, b = shards[0].term(term), loaded.term(term)
            np.testing.assert_array_equal(a.postings.doc_ids, b.postings.doc_ids)
            np.testing.assert_array_equal(a.postings.tfs, b.postings.tfs)
            np.testing.assert_array_equal(a.scores, b.scores)
            assert a.upper_bound == b.upper_bound
            assert a.global_doc_freq == b.global_doc_freq

    def test_search_results_identical(self, shards, tmp_path):
        path = tmp_path / "shard.npz"
        save_shard(shards[0], path)
        loaded = load_shard(path)
        for terms in (["t1"], ["t1", "t12"], ["t3", "t5", "t40"]):
            original = exhaustive_search(shards[0], terms, 10)
            restored = exhaustive_search(loaded, terms, 10)
            assert original.hits == restored.hits
            pruned = maxscore_search(loaded, terms, 10)
            assert [d for d, _ in pruned.hits] == [d for d, _ in original.hits]

    def test_similarity_restored(self, shards, tmp_path):
        path = tmp_path / "shard.npz"
        save_shard(shards[0], path)
        loaded = load_shard(path)
        assert type(loaded.similarity) is type(shards[0].similarity)
        assert loaded.similarity.k1 == shards[0].similarity.k1

    def test_directory_roundtrip(self, shards, tmp_path):
        save_shards(shards, tmp_path / "cluster")
        loaded = load_shards(tmp_path / "cluster")
        assert [s.shard_id for s in loaded] == [s.shard_id for s in shards]

    def test_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_shards(tmp_path / "nope")


class TestBankRoundtrip:
    def test_save_load_predictions_identical(self, unit_testbed, tmp_path):
        path = tmp_path / "bank.npz"
        unit_testbed.bank.save(path)
        restored = PredictorBank.load(path, unit_testbed.cluster)
        assert restored.trained
        for query in list({q.terms: q for q in unit_testbed.wikipedia_trace}.values())[:10]:
            original = unit_testbed.bank.predict(query)
            loaded = restored.predict(query)
            for a, b in zip(original, loaded):
                assert a.quality_k == b.quality_k
                assert a.quality_half_k == b.quality_half_k
                assert a.service_default_ms == pytest.approx(b.service_default_ms)

    def test_untrained_save_rejected(self, unit_testbed, tmp_path):
        bank = PredictorBank(unit_testbed.cluster)
        with pytest.raises(RuntimeError):
            bank.save(tmp_path / "bank.npz")

    def test_shard_count_mismatch_rejected(self, unit_testbed, shards, tmp_path):
        path = tmp_path / "bank.npz"
        unit_testbed.bank.save(path)
        other = SearchCluster(shards, k=unit_testbed.cluster.k)
        with pytest.raises(ValueError):
            PredictorBank.load(path, other)
