"""Unit tests for the query model and traces."""

import pytest

from repro.retrieval import Query, QueryTrace
from repro.text import StandardAnalyzer, WhitespaceAnalyzer


class TestQuery:
    def test_from_text_analyzes_and_dedups(self):
        query = Query.from_text("The running RUNS", StandardAnalyzer(), query_id=3)
        assert query.query_id == 3
        assert len(set(query.terms)) == len(query.terms)
        assert "runn" in query.terms or "run" in query.terms

    def test_from_text_preserves_first_occurrence_order(self):
        query = Query.from_text("b a b c", WhitespaceAnalyzer())
        assert query.terms == ("b", "a", "c")

    def test_duplicate_terms_rejected(self):
        with pytest.raises(ValueError):
            Query(query_id=0, terms=("a", "a"))

    def test_length(self):
        assert Query(query_id=0, terms=("a", "b")).length == 2

    def test_frozen(self):
        query = Query(query_id=0, terms=("a",))
        with pytest.raises(AttributeError):
            query.terms = ("b",)


class TestQueryTrace:
    def _trace(self):
        return QueryTrace(
            name="test",
            queries=[
                Query(query_id=0, terms=("a",), arrival_time=0.5),
                Query(query_id=1, terms=("b", "c"), arrival_time=2.0),
            ],
        )

    def test_len_iter_getitem(self):
        trace = self._trace()
        assert len(trace) == 2
        assert [q.query_id for q in trace] == [0, 1]
        assert trace[1].terms == ("b", "c")

    def test_duration(self):
        assert self._trace().duration == 2.0
        assert QueryTrace(name="empty").duration == 0.0

    def test_distinct_terms(self):
        assert self._trace().distinct_terms() == {"a", "b", "c"}
