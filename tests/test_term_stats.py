"""Unit + property tests for index-time term statistics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.term_stats import (
    TermStatsIndex,
    _docs_ever_in_topk,
    _local_maxima_mask,
    compute_term_stats,
)


class TestLocalMaxima:
    def test_simple_peak(self):
        mask = _local_maxima_mask(np.array([1.0, 3.0, 2.0]))
        assert mask.tolist() == [False, True, False]

    def test_plateau_counts_first(self):
        mask = _local_maxima_mask(np.array([1.0, 3.0, 3.0, 2.0]))
        assert mask.tolist() == [False, True, False, False]

    def test_endpoints(self):
        assert _local_maxima_mask(np.array([5.0, 1.0])).tolist() == [True, False]
        assert _local_maxima_mask(np.array([1.0, 5.0])).tolist() == [False, True]

    def test_single_element(self):
        assert _local_maxima_mask(np.array([2.0])).tolist() == [True]

    def test_empty(self):
        assert _local_maxima_mask(np.zeros(0)).size == 0

    def test_monotone_increasing_has_one_peak(self):
        mask = _local_maxima_mask(np.arange(10, dtype=float))
        assert mask.sum() == 1 and mask[-1]


class TestDocsEverInTopK:
    def test_ascending_all_enter(self):
        assert _docs_ever_in_topk(np.arange(10, dtype=float), 3) == 10

    def test_descending_only_first_k(self):
        assert _docs_ever_in_topk(np.arange(10, 0, -1, dtype=float), 3) == 3

    def test_k_larger_than_list(self):
        assert _docs_ever_in_topk(np.array([1.0, 2.0]), 10) == 2


class TestComputeTermStats:
    def test_aggregates(self):
        scores = np.array([1.0, 2.0, 3.0, 4.0])
        stats = compute_term_stats("t", scores, k=2, idf=1.5, upper_bound=5.0)
        assert stats.posting_length == 4
        assert stats.mean == pytest.approx(2.5)
        assert stats.median == pytest.approx(2.5)
        assert stats.max_score == 4.0
        assert stats.kth_score == 3.0  # 2nd largest
        assert stats.idf == 1.5
        assert stats.variance == pytest.approx(np.var(scores))

    def test_kth_score_short_list(self):
        stats = compute_term_stats("t", np.array([2.0, 5.0]), k=10, idf=1.0, upper_bound=5.0)
        assert stats.kth_score == 2.0  # fewer than k postings: min score

    def test_empty_scores(self):
        stats = compute_term_stats("t", np.zeros(0), k=5, idf=0.7, upper_bound=0.0)
        assert stats.posting_length == 0
        assert stats.max_score == 0.0
        assert stats.idf == 0.7

    def test_geometric_harmonic_means(self):
        scores = np.array([1.0, 4.0])
        stats = compute_term_stats("t", scores, k=1, idf=1.0, upper_bound=4.0)
        assert stats.geometric_mean == pytest.approx(2.0)
        assert stats.harmonic_mean == pytest.approx(1.6)

    def test_n_max_and_within_5pct(self):
        scores = np.array([10.0, 10.0, 9.6, 5.0])
        stats = compute_term_stats("t", scores, k=2, idf=1.0, upper_bound=10.0)
        assert stats.n_max_score == 2
        assert stats.docs_within_5pct_of_max == 3  # >= 9.5


@settings(max_examples=100, deadline=None)
@given(
    scores=st.lists(st.floats(0.01, 100.0), min_size=1, max_size=60),
    k=st.integers(1, 15),
)
def test_term_stats_invariants(scores, k):
    arr = np.asarray(scores)
    stats = compute_term_stats("t", arr, k=k, idf=1.0, upper_bound=float(arr.max()))
    assert stats.posting_length == arr.size
    assert stats.first_quartile <= stats.median <= stats.third_quartile
    assert stats.harmonic_mean <= stats.geometric_mean + 1e-9
    assert stats.geometric_mean <= stats.mean + 1e-9
    assert stats.kth_score <= stats.max_score + 1e-12
    assert 1 <= stats.n_local_maxima <= arr.size
    assert stats.n_local_maxima_above_mean <= stats.n_local_maxima
    assert 0 <= stats.docs_ever_in_topk <= arr.size
    assert stats.docs_ever_in_topk >= min(k, arr.size)


class TestTermStatsIndex:
    def test_caches(self, shards):
        index = TermStatsIndex(shards[0], k=5)
        term = shards[0].terms()[0]
        first = index.get(term)
        assert index.get(term) is first
        assert len(index) == 1

    def test_missing_term_is_empty_stats(self, shards):
        index = TermStatsIndex(shards[0], k=5)
        stats = index.get("never-seen-term")
        assert stats.posting_length == 0

    def test_warm(self, shards):
        index = TermStatsIndex(shards[0], k=5)
        terms = shards[0].terms()[:5]
        index.warm(terms)
        assert len(index) == len(terms)

    def test_rejects_bad_k(self, shards):
        with pytest.raises(ValueError):
            TermStatsIndex(shards[0], k=0)
